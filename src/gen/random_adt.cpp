#include "gen/random_adt.hpp"

#include <functional>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace adtp {

namespace {

/// Mutable scaffolding; converted to an Adt once generation finishes.
struct Blueprint {
  struct BpNode {
    GateType type = GateType::BasicStep;
    Agent agent = Agent::Attacker;
    std::vector<std::size_t> children;  // INH: [inhibited, trigger]
  };

  std::vector<BpNode> nodes;
  std::size_t root = 0;

  std::size_t add(Agent agent) {
    nodes.push_back(BpNode{GateType::BasicStep, agent, {}});
    return nodes.size() - 1;
  }
};

class Generator {
 public:
  Generator(const RandomAdtOptions& options, std::uint64_t seed)
      : options_(options), rng_(seed) {}

  Adt run() {
    bp_.root = bp_.add(options_.root_agent);
    leaves_.push_back(bp_.root);

    // Expand random leaves until the target size is reached or nothing is
    // expandable (e.g. the defense cap forbids all remaining expansions).
    std::size_t stuck = 0;
    while (bp_.nodes.size() < options_.target_nodes &&
           stuck < leaves_.size() + 8) {
      const std::size_t pick = rng_.below(leaves_.size());
      if (expand(leaves_[pick])) {
        leaves_[pick] = leaves_.back();
        leaves_.pop_back();
        stuck = 0;
      } else {
        ++stuck;
      }
    }
    return to_adt();
  }

 private:
  [[nodiscard]] std::size_t defense_leaf_count() const {
    std::size_t n = 0;
    for (const auto& node : bp_.nodes) {
      if (node.type == GateType::BasicStep && node.agent == Agent::Defender) {
        ++n;
      }
    }
    return n;
  }

  /// All current ancestors of \p v (for acyclic sharing). The blueprint
  /// is small; recomputing per expansion keeps the code simple.
  [[nodiscard]] std::vector<char> ancestors_of(std::size_t v) const {
    std::vector<std::vector<std::size_t>> parents(bp_.nodes.size());
    for (std::size_t u = 0; u < bp_.nodes.size(); ++u) {
      for (std::size_t c : bp_.nodes[u].children) parents[c].push_back(u);
    }
    std::vector<char> marked(bp_.nodes.size(), 0);
    std::vector<std::size_t> stack{v};
    marked[v] = 1;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t p : parents[u]) {
        if (!marked[p]) {
          marked[p] = 1;
          stack.push_back(p);
        }
      }
    }
    return marked;
  }

  /// A random existing node of \p agent that is not an ancestor of \p of
  /// and not already in \p taken; npos when none exists. Only nodes that
  /// existed when \p forbidden was computed are eligible - the expansion
  /// loop appends fresh leaves to bp_.nodes while \p forbidden keeps its
  /// original size (and sharing a just-created sibling leaf would be
  /// pointless anyway).
  std::size_t share_candidate(Agent agent, const std::vector<char>& forbidden,
                              const std::vector<std::size_t>& taken) {
    std::vector<std::size_t> pool;
    for (std::size_t u = 0; u < forbidden.size(); ++u) {
      if (bp_.nodes[u].agent != agent) continue;
      if (forbidden[u]) continue;
      bool dup = false;
      for (std::size_t t : taken) dup = dup || (t == u);
      if (!dup) pool.push_back(u);
    }
    if (pool.empty()) return npos;
    return pool[rng_.below(pool.size())];
  }

  /// Expands leaf \p v into a gate; returns false when no expansion is
  /// currently allowed for it.
  bool expand(std::size_t v) {
    const Agent agent = bp_.nodes[v].agent;
    const std::size_t defenses = defense_leaf_count();
    const std::size_t defense_headroom =
        options_.max_defenses > defenses ? options_.max_defenses - defenses
                                         : 0;

    // An INH gate needs a trigger of the opposite agent; when the gate is
    // an attacker's, the trigger subtree adds one defense leaf. A defender
    // INH replaces a defense leaf with (defense leaf + attack trigger), so
    // the defense count is unchanged.
    const bool allow_inh = agent == Agent::Defender || defense_headroom >= 1;
    // Expanding a defense leaf into a k-ary AND/OR adds (k - 1) defense
    // leaves; the cap limits k.
    std::size_t max_children = std::max<std::size_t>(options_.max_children, 2);
    if (agent == Agent::Defender) {
      if (defense_headroom == 0) max_children = 0;  // cannot add any
      else max_children = std::min(max_children, defense_headroom + 1);
    }
    const bool allow_and_or = max_children >= 2;

    if (!allow_and_or && !allow_inh) return false;

    const bool make_inh =
        allow_inh && (!allow_and_or || rng_.chance(options_.inh_probability));

    if (make_inh) {
      const std::size_t inhibited = bp_.add(agent);
      const std::size_t trigger = bp_.add(opponent(agent));
      bp_.nodes[v].type = GateType::Inhibit;
      bp_.nodes[v].children = {inhibited, trigger};
      leaves_.push_back(inhibited);
      leaves_.push_back(trigger);
      return true;
    }

    const std::size_t child_count = 2 + rng_.below(max_children - 1);
    const auto forbidden = ancestors_of(v);
    std::vector<std::size_t> children;
    for (std::size_t i = 0; i < child_count; ++i) {
      if (options_.share_probability > 0 &&
          rng_.chance(options_.share_probability)) {
        const std::size_t shared = share_candidate(agent, forbidden, children);
        if (shared != npos) {
          children.push_back(shared);
          continue;
        }
      }
      const std::size_t fresh = bp_.add(agent);
      leaves_.push_back(fresh);
      children.push_back(fresh);
    }
    bp_.nodes[v].type =
        rng_.chance(options_.and_probability) ? GateType::And : GateType::Or;
    bp_.nodes[v].children = std::move(children);
    return true;
  }

  Adt to_adt() {
    Adt adt;
    std::unordered_map<std::size_t, NodeId> remap;
    std::size_t attack_seq = 0;
    std::size_t defense_seq = 0;
    std::size_t gate_seq = 0;

    std::function<NodeId(std::size_t)> visit = [&](std::size_t u) -> NodeId {
      if (auto it = remap.find(u); it != remap.end()) return it->second;
      const Blueprint::BpNode& n = bp_.nodes[u];
      NodeId id = kNoNode;
      switch (n.type) {
        case GateType::BasicStep:
          id = n.agent == Agent::Attacker
                   ? adt.add_basic("a" + std::to_string(++attack_seq),
                                   Agent::Attacker)
                   : adt.add_basic("d" + std::to_string(++defense_seq),
                                   Agent::Defender);
          break;
        case GateType::Inhibit: {
          const NodeId inhibited = visit(n.children[0]);
          const NodeId trigger = visit(n.children[1]);
          id = adt.add_inhibit("g" + std::to_string(++gate_seq), inhibited,
                               trigger);
          break;
        }
        case GateType::And:
        case GateType::Or: {
          std::vector<NodeId> children;
          children.reserve(n.children.size());
          for (std::size_t c : n.children) children.push_back(visit(c));
          id = adt.add_gate("g" + std::to_string(++gate_seq), n.type, n.agent,
                            std::move(children));
          break;
        }
      }
      remap.emplace(u, id);
      return id;
    };

    const NodeId root = visit(bp_.root);
    adt.set_root(root);
    adt.freeze();
    return adt;
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const RandomAdtOptions& options_;
  Rng rng_;
  Blueprint bp_;
  std::vector<std::size_t> leaves_;  // currently expandable leaves
};

double draw_value(const Semiring& domain, Rng& rng) {
  if (domain.kind() == SemiringKind::Probability) {
    return 0.05 + 0.9 * rng.uniform();
  }
  return static_cast<double>(rng.range(1, 100));
}

}  // namespace

Adt generate_random_adt(const RandomAdtOptions& options, std::uint64_t seed) {
  if (options.target_nodes == 0) {
    throw ModelError("generate_random_adt: target_nodes must be positive");
  }
  return Generator(options, seed).run();
}

Attribution random_attribution(const Adt& adt, const Semiring& defender_domain,
                               const Semiring& attacker_domain,
                               std::uint64_t seed) {
  Rng rng(seed);
  Attribution attribution;
  for (NodeId id : adt.defense_steps()) {
    attribution.set(adt.name(id), draw_value(defender_domain, rng));
  }
  for (NodeId id : adt.attack_steps()) {
    attribution.set(adt.name(id), draw_value(attacker_domain, rng));
  }
  return attribution;
}

AugmentedAdt generate_random_aadt(const RandomAdtOptions& options,
                                  std::uint64_t seed,
                                  const Semiring& defender_domain,
                                  const Semiring& attacker_domain) {
  Adt adt = generate_random_adt(options, seed);
  Attribution attribution =
      random_attribution(adt, defender_domain, attacker_domain, seed ^
                         0x9e3779b97f4a7c15ULL);
  return AugmentedAdt(std::move(adt), std::move(attribution), defender_domain,
                      attacker_domain);
}

}  // namespace adtp
