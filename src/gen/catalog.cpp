#include "gen/catalog.hpp"

#include <cmath>

#include "adt/transform.hpp"
#include "util/error.hpp"

namespace adtp::catalog {

Adt fig1_steal_data_at() {
  Adt adt;
  const NodeId bu = adt.add_basic("BU", Agent::Attacker);
  const NodeId pa = adt.add_basic("PA", Agent::Attacker);
  const NodeId esv = adt.add_basic("ESV", Agent::Attacker);
  const NodeId acv = adt.add_basic("ACV", Agent::Attacker);
  const NodeId creds = adt.add_gate("obtain_credentials", GateType::Or,
                                    Agent::Attacker, {bu, pa, esv, acv});
  const NodeId sdk = adt.add_basic("SDK", Agent::Attacker);
  const NodeId root = adt.add_gate("steal_user_data", GateType::And,
                                   Agent::Attacker, {creds, sdk});
  adt.set_root(root);
  adt.freeze();
  return adt;
}

Adt fig2_steal_data_adt() {
  Adt adt;
  const NodeId bu = adt.add_basic("BU", Agent::Attacker);

  const NodeId pa = adt.add_basic("PA", Agent::Attacker);
  const NodeId aput = adt.add_basic("APUT", Agent::Defender);
  const NodeId pa_inh = adt.add_inhibit("PA_countered", pa, aput);

  // SU protects both ESV and ACV; DNS hijack disables SU. SU_eff is the
  // single shared node that makes this model a DAG.
  const NodeId su = adt.add_basic("SU", Agent::Defender);
  const NodeId dns = adt.add_basic("DNS", Agent::Attacker);
  const NodeId su_eff = adt.add_inhibit("SU_effective", su, dns);

  const NodeId esv = adt.add_basic("ESV", Agent::Attacker);
  const NodeId esv_inh = adt.add_inhibit("ESV_countered", esv, su_eff);
  const NodeId acv = adt.add_basic("ACV", Agent::Attacker);
  const NodeId acv_inh = adt.add_inhibit("ACV_countered", acv, su_eff);

  const NodeId creds =
      adt.add_gate("obtain_credentials", GateType::Or, Agent::Attacker,
                   {bu, pa_inh, esv_inh, acv_inh});

  const NodeId sdk = adt.add_basic("SDK", Agent::Attacker);
  const NodeId sko = adt.add_basic("SKO", Agent::Defender);
  const NodeId sdk_inh = adt.add_inhibit("SDK_countered", sdk, sko);

  const NodeId root = adt.add_gate("steal_user_data", GateType::And,
                                   Agent::Attacker, {creds, sdk_inh});
  adt.set_root(root);
  adt.freeze();
  return adt;
}

AugmentedAdt fig3_example() {
  Adt adt;
  const NodeId d1 = adt.add_basic("d1", Agent::Defender);
  const NodeId d2 = adt.add_basic("d2", Agent::Defender);
  const NodeId both =
      adt.add_gate("both_defenses", GateType::And, Agent::Defender, {d1, d2});
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  // The attacker can disable the combined defense with a1.
  const NodeId def_eff = adt.add_inhibit("defenses_effective", both, a1);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  const NodeId guarded = adt.add_inhibit("guarded_attack", a2, def_eff);
  const NodeId a3 = adt.add_basic("a3", Agent::Attacker);
  const NodeId root =
      adt.add_gate("top", GateType::Or, Agent::Attacker, {guarded, a3});
  adt.set_root(root);
  adt.freeze();

  Attribution beta;
  beta.set("a1", 5);
  beta.set("a2", 10);
  beta.set("a3", 20);
  beta.set("d1", 5);
  beta.set("d2", 10);
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

AugmentedAdt fig4_exponential(int n) {
  if (n < 1 || n > 20) {
    throw ModelError("fig4_exponential: n must be in [1, 20]");
  }
  Adt adt;
  Attribution beta;
  std::vector<NodeId> gates;
  for (int i = 1; i <= n; ++i) {
    const std::string di = "d" + std::to_string(i);
    const std::string ai = "a" + std::to_string(i);
    const NodeId d = adt.add_basic(di, Agent::Defender);
    const NodeId a = adt.add_basic(ai, Agent::Attacker);
    gates.push_back(adt.add_inhibit("I" + std::to_string(i), d, a));
    const double weight = std::ldexp(1.0, i - 1);  // 2^(i-1)
    beta.set(di, weight);
    beta.set(ai, weight);
  }
  const NodeId root =
      adt.add_gate("top", GateType::Or, Agent::Defender, std::move(gates));
  adt.set_root(root);
  adt.freeze();
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

AugmentedAdt fig5_example() {
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId d1 = adt.add_basic("d1", Agent::Defender);
  const NodeId i1 = adt.add_inhibit("i1", a1, d1);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  const NodeId d2 = adt.add_basic("d2", Agent::Defender);
  const NodeId i2 = adt.add_inhibit("i2", a2, d2);
  const NodeId root =
      adt.add_gate("top", GateType::Or, Agent::Attacker, {i1, i2});
  adt.set_root(root);
  adt.freeze();

  Attribution beta;
  beta.set("a1", 5);
  beta.set("a2", 10);
  beta.set("d1", 4);
  beta.set("d2", 8);
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

AugmentedAdt money_theft_dag() {
  Adt adt;

  // --- via ATM ---------------------------------------------------------
  const NodeId steal_card = adt.add_basic("steal_card", Agent::Attacker);
  const NodeId force = adt.add_basic("force", Agent::Attacker);
  const NodeId eavesdrop = adt.add_basic("eavesdrop", Agent::Attacker);
  const NodeId cover_keypad = adt.add_basic("cover_keypad", Agent::Defender);
  const NodeId camera = adt.add_basic("camera", Agent::Attacker);
  // Covering the keypad blocks eavesdropping unless the attacker installs
  // a camera.
  const NodeId ck_eff = adt.add_inhibit("cover_keypad_effective",
                                        cover_keypad, camera);
  const NodeId eaves_inh =
      adt.add_inhibit("eavesdrop_uncovered", eavesdrop, ck_eff);
  const NodeId learn_pin = adt.add_gate("learn_pin", GateType::Or,
                                        Agent::Attacker, {force, eaves_inh});
  const NodeId withdraw = adt.add_basic("withdraw_cash", Agent::Attacker);
  const NodeId via_atm =
      adt.add_gate("via_atm", GateType::And, Agent::Attacker,
                   {steal_card, learn_pin, withdraw});

  // --- via online banking ----------------------------------------------
  const NodeId guess_user = adt.add_basic("guess_user_name", Agent::Attacker);
  const NodeId phishing = adt.add_basic("phishing", Agent::Attacker);
  const NodeId get_user = adt.add_gate("get_user_name", GateType::Or,
                                       Agent::Attacker, {guess_user, phishing});

  const NodeId guess_pwd = adt.add_basic("guess_pwd", Agent::Attacker);
  const NodeId strong_pwd = adt.add_basic("strong_pwd", Agent::Defender);
  const NodeId guess_pwd_inh =
      adt.add_inhibit("guess_pwd_blocked", guess_pwd, strong_pwd);
  // Phishing is shared with get_user_name: the single DAG node of the
  // model (the paper duplicates it for the tree analysis).
  const NodeId get_pwd =
      adt.add_gate("get_password", GateType::Or, Agent::Attacker,
                   {guess_pwd_inh, phishing});

  const NodeId login = adt.add_basic("log_in_and_execute_transfer",
                                     Agent::Attacker);
  const NodeId sms = adt.add_basic("sms_authentication", Agent::Defender);
  const NodeId steal_phone = adt.add_basic("steal_phone", Agent::Attacker);
  const NodeId sms_eff = adt.add_inhibit("sms_effective", sms, steal_phone);
  const NodeId login_inh = adt.add_inhibit("transfer_allowed", login, sms_eff);

  const NodeId via_online =
      adt.add_gate("via_online_banking", GateType::And, Agent::Attacker,
                   {get_user, get_pwd, login_inh});

  const NodeId root =
      adt.add_gate("steal_from_account", GateType::Or, Agent::Attacker,
                   {via_atm, via_online});
  adt.set_root(root);
  adt.freeze();

  Attribution beta;
  beta.set("steal_card", 10);
  beta.set("force", 100);
  beta.set("eavesdrop", 20);
  beta.set("camera", 75);
  beta.set("withdraw_cash", 60);
  beta.set("guess_user_name", 120);
  beta.set("phishing", 70);
  beta.set("guess_pwd", 120);
  beta.set("log_in_and_execute_transfer", 10);
  beta.set("steal_phone", 60);
  beta.set("cover_keypad", 30);
  beta.set("strong_pwd", 10);
  beta.set("sms_authentication", 20);
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

AugmentedAdt money_theft_tree() { return unfold_to_tree(money_theft_dag()); }

}  // namespace adtp::catalog
