/// \file catalog.hpp
/// \brief The paper's example models, reconstructed exactly.
///
/// Reconstruction notes (see DESIGN.md section 4 for the full derivation):
/// the arXiv text garbles the infinity glyph as "8"; all fronts quoted in
/// doc comments below are the corrected values, and every model here is
/// covered by golden tests that reproduce the paper's published numbers.

#pragma once

#include "adt/adt.hpp"
#include "core/attribution.hpp"

namespace adtp::catalog {

/// Fig. 1: the plain attack tree for stealing user data. The attacker
/// needs credentials and the decryption key; credentials can be obtained
/// by blackmail (BU), phishing (PA), a software vulnerability (ESV) or an
/// access-control vulnerability (ACV). Structure only - the paper assigns
/// no values.
[[nodiscard]] Adt fig1_steal_data_at();

/// Fig. 2: the ADT extension of Fig. 1. Anti-phishing user training
/// (APUT) counters PA, SKO counters stealing the decryption key, software
/// updates (SU) counter both ESV and ACV (one shared defense node - the
/// model is DAG-shaped), and the DNS-hijack attack (DNS) disables SU.
[[nodiscard]] Adt fig2_steal_data_adt();

/// Fig. 3 / Examples 1-3: the tree-structured AADT with attacker costs
/// a1 = 5, a2 = 10, a3 = 20 and defender costs d1 = 5, d2 = 10 (min-cost
/// domains). Realized as OR( INH(a2 | INH(AND(d1,d2) | a1)), a3 ), which
/// yields the paper's S = {(00,010),(01,010),(10,010),(11,110)} and
/// PF = {(0,10),(15,15)}.
[[nodiscard]] AugmentedAdt fig3_example();

/// Fig. 4: the worst-case family with |PF| = 2^n. A defender-held root
/// OR over I_i = INH(d_i | a_i) with beta_D(d_i) = beta_A(a_i) = 2^(i-1);
/// the optimal response is rho(delta) = delta and every (k, k),
/// 0 <= k < 2^n, is Pareto-optimal. Requires 1 <= n <= 20 (front sizes
/// beyond 2^20 exist only to exhaust memory).
[[nodiscard]] AugmentedAdt fig4_exponential(int n);

/// Fig. 5 / Example 5: OR( INH(a1 | d1), INH(a2 | d2) ) with defender
/// costs d1 = 4, d2 = 8 and attacker costs a1 = 5, a2 = 10;
/// PF = {(0,5),(4,10),(12,inf)}.
[[nodiscard]] AugmentedAdt fig5_example();

/// Fig. 7: the money-theft case study adapted from Kordy & Widel [5],
/// DAG-shaped (Phishing feeds both "get user name" and "get password").
/// Attacker costs: steal card 10, withdraw cash 60, force 100, eavesdrop
/// 20, camera 75, guess user name 120, phishing 70, guess pwd 120, log in
/// & execute transfer 10, steal phone 60. Defender costs: cover keypad
/// 30, SMS authentication 20, strong pwd 10.
/// BDDBU front: {(0,80),(20,90),(50,140)}; after unfold_to_tree (the
/// paper's duplicated-Phishing tree), BU front: {(0,90),(30,150),(50,165)}.
[[nodiscard]] AugmentedAdt money_theft_dag();

/// The paper's manually unfolded tree variant of money_theft_dag()
/// (Phishing duplicated, "performed twice").
[[nodiscard]] AugmentedAdt money_theft_tree();

}  // namespace adtp::catalog
