/// \file random_adt.hpp
/// \brief Seeded random ADT generation (the paper's appendix recipe).
///
/// The paper generates its 120-instance test suite by recursively creating
/// nodes with random properties (gate type, attack/defense agent, child
/// count) until a target node count is reached; the process "naturally
/// creates tree- and DAG-structured ADTs". We implement this as leaf
/// expansion over a mutable blueprint: start from a single root leaf and
/// repeatedly expand a random leaf into an AND/OR/INH gate with fresh leaf
/// children; in DAG mode a child slot may instead link to an existing
/// non-ancestor node of the right agent, which introduces sharing. The
/// result is always a valid Definition 1 model.

#pragma once

#include <cstdint>
#include <limits>

#include "adt/adt.hpp"
#include "core/attribution.hpp"
#include "util/rng.hpp"

namespace adtp {

struct RandomAdtOptions {
  /// Stop expanding once the model has at least this many nodes.
  std::size_t target_nodes = 50;

  /// Children per AND/OR gate are drawn uniformly from [2, max_children].
  std::size_t max_children = 4;

  /// Probability that an expansion picks an INH gate (a counter-measure
  /// for attacker nodes, a counter-attack for defender nodes).
  double inh_probability = 0.3;

  /// Among AND/OR expansions, probability of AND.
  double and_probability = 0.45;

  /// Probability that a child slot of an AND/OR expansion reuses an
  /// existing node instead of a fresh leaf. 0 generates trees; > 0
  /// generates DAGs.
  double share_probability = 0.0;

  /// Upper bound on the number of basic defense steps (2^|D| defense
  /// vectors drive the Pareto front size; the paper's instances keep |D|
  /// moderate). No bound by default.
  std::size_t max_defenses = std::numeric_limits<std::size_t>::max();

  /// Agent of the root (the paper's case studies use attacker roots; the
  /// Fig. 4 family uses a defender root).
  Agent root_agent = Agent::Attacker;
};

/// Generates a random ADT. Identical (options, seed) pairs produce
/// identical models.
[[nodiscard]] Adt generate_random_adt(const RandomAdtOptions& options,
                                      std::uint64_t seed);

/// Draws an attribution for every leaf of \p adt, suitable for the given
/// domains: integer values in [1, 100] for the cost/time/skill domains,
/// probabilities in [0.05, 0.95] for probability domains.
[[nodiscard]] Attribution random_attribution(const Adt& adt,
                                             const Semiring& defender_domain,
                                             const Semiring& attacker_domain,
                                             std::uint64_t seed);

/// Convenience: generate_random_adt + random_attribution, bundled.
[[nodiscard]] AugmentedAdt generate_random_aadt(
    const RandomAdtOptions& options, std::uint64_t seed,
    const Semiring& defender_domain, const Semiring& attacker_domain);

}  // namespace adtp
