#include "store/codec.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace adtp::store {

namespace {

// ---- little-endian byte plumbing ------------------------------------------
// The containers in play are x86-64 only today, but the format is
// explicitly little-endian so a future big-endian port changes these
// eight functions, not the shard files.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over an immutable buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(v | (std::uint16_t{data_[pos_ + i]}
                                          << (8 * i)));
    }
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

  void expect_end() const {
    if (pos_ != size_) {
      throw CodecError("codec: " + std::to_string(size_ - pos_) +
                       " trailing byte(s) after a complete value");
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw CodecError("codec: truncated buffer");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void check_version(std::uint16_t version, const char* what) {
  if (version != kCodecVersion) {
    throw CodecError(std::string("codec: ") + what + " version " +
                     std::to_string(version) + " (this build reads " +
                     std::to_string(kCodecVersion) + ")");
  }
}

void put_bitvec(std::vector<std::uint8_t>& out, const BitVec& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  const std::vector<std::size_t> bits = v.set_bits();
  put_u32(out, static_cast<std::uint32_t>(bits.size()));
  for (const std::size_t bit : bits) {
    put_u32(out, static_cast<std::uint32_t>(bit));
  }
}

BitVec get_bitvec(Reader& r) {
  const std::uint32_t size = r.u32();
  const std::uint32_t count = r.u32();
  if (count > size) throw CodecError("codec: bit vector count exceeds size");
  BitVec v(size);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t bit = r.u32();
    if (bit >= size) throw CodecError("codec: bit index out of range");
    v.set(bit);
  }
  return v;
}

}  // namespace

void encode_result(const AnalysisResult& result,
                   std::vector<std::uint8_t>& out) {
  put_u16(out, kCodecVersion);
  out.push_back(static_cast<std::uint8_t>(result.used));
  out.push_back(0);  // reserved
  put_f64(out, result.seconds);
  put_u64(out, result.memo_hits);
  put_u64(out, result.memo_misses);
  const std::vector<ValuePoint>& points = result.front.points();
  put_u32(out, static_cast<std::uint32_t>(points.size()));
  for (const ValuePoint& p : points) {
    put_f64(out, p.def);
    put_f64(out, p.att);
  }
}

std::vector<std::uint8_t> encode_result(const AnalysisResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + 16 * result.front.size());
  encode_result(result, out);
  return out;
}

AnalysisResult decode_result(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  check_version(r.u16(), "result");
  AnalysisResult result;
  const std::uint8_t used = r.u8();
  if (used > static_cast<std::uint8_t>(Algorithm::Hybrid)) {
    throw CodecError("codec: unknown algorithm tag " + std::to_string(used));
  }
  result.used = static_cast<Algorithm>(used);
  (void)r.u8();  // reserved
  result.seconds = r.f64();
  result.memo_hits = r.u64();
  result.memo_misses = r.u64();
  const std::uint32_t n = r.u32();
  // Each point needs 16 bytes; reject lying counts before reserving.
  if (static_cast<std::uint64_t>(n) * 16 > r.remaining()) {
    throw CodecError("codec: point count exceeds buffer");
  }
  std::vector<ValuePoint> points;
  points.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ValuePoint p;
    p.def = r.f64();
    p.att = r.f64();
    points.push_back(p);
  }
  r.expect_end();
  // The staircase invariant came from the run that produced the bytes;
  // adopt verbatim (re-minimizing could alter bits).
  result.front = Front::from_staircase(std::move(points));
  return result;
}

void encode_witness_front(const WitnessFront& front,
                          std::vector<std::uint8_t>& out) {
  put_u16(out, kCodecVersion);
  put_u32(out, static_cast<std::uint32_t>(front.size()));
  for (const WitnessPoint& p : front.points()) {
    put_f64(out, p.def);
    put_f64(out, p.att);
    put_bitvec(out, p.defense);
    put_bitvec(out, p.attack);
  }
}

WitnessFront decode_witness_front(const std::uint8_t* data, std::size_t size) {
  Reader r(data, size);
  check_version(r.u16(), "witness front");
  const std::uint32_t n = r.u32();
  std::vector<WitnessPoint> points;
  // 16 value bytes + two minimal (8-byte) bit vectors per point.
  if (static_cast<std::uint64_t>(n) * 32 > r.remaining()) {
    throw CodecError("codec: point count exceeds buffer");
  }
  points.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WitnessPoint p;
    p.def = r.f64();
    p.att = r.f64();
    p.defense = get_bitvec(r);
    p.attack = get_bitvec(r);
    points.push_back(std::move(p));
  }
  r.expect_end();
  return WitnessFront::from_staircase(std::move(points));
}

}  // namespace adtp::store
