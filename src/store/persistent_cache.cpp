#include "store/persistent_cache.hpp"

#include <chrono>
#include <thread>

#include "store/codec.hpp"

namespace adtp::store {

PersistentFrontCache::PersistentFrontCache(std::string dir,
                                           PersistentCacheOptions options)
    : FrontCache(options.memory_capacity), options_(std::move(options)) {
  try {
    store_ = std::make_unique<FrontStore>(std::move(dir), options_.store);
    recovery_ = store_->recovery();
  } catch (const StoreError& e) {
    ++pstats_.store_errors;
    degrade(std::string("open failed: ") + e.what());
  }
}

PersistentFrontCache::~PersistentFrontCache() = default;

void PersistentFrontCache::note(const std::string& what) {
  if (options_.on_store_error) options_.on_store_error(what);
}

void PersistentFrontCache::degrade(const std::string& why) {
  store_.reset();
  pstats_.degraded = true;
  note("persistent front cache degraded to memory-only: " + why);
}

template <typename Fn>
auto PersistentFrontCache::with_retry(const char* doing, Fn&& fn)
    -> std::optional<decltype(fn())> {
  double backoff = options_.retry_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const StoreError& e) {
      ++pstats_.store_errors;
      if (!e.transient() || attempt >= options_.max_retries) {
        degrade(std::string(doing) + ": " + e.what());
        return std::nullopt;
      }
      ++pstats_.retries;
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2;
      }
    }
  }
}

std::optional<AnalysisResult> PersistentFrontCache::lookup(
    const FrontCacheKey& key) {
  if (auto hit = FrontCache::lookup(key)) return hit;
  // Memory miss (booked as such in the base stats); consult the store.
  const std::lock_guard<std::mutex> lock(store_mutex_);
  if (store_ == nullptr) return std::nullopt;
  const auto payload = with_retry("get", [&] { return store_->get(key); });
  if (!payload.has_value() || !payload->has_value()) return std::nullopt;
  AnalysisResult result;
  try {
    result = decode_result((*payload)->data(), (*payload)->size());
  } catch (const CodecError& e) {
    // Checksums passed but the bytes don't decode (version skew, codec
    // bug). Count it, never serve it; the store itself stays up.
    ++pstats_.decode_failures;
    note(std::string("stored payload failed to decode: ") + e.what());
    return std::nullopt;
  }
  ++pstats_.store_hits;
  FrontCache::insert(key, result);  // promote so the next hit is memory
  return result;
}

bool PersistentFrontCache::insert(const FrontCacheKey& key,
                                  const AnalysisResult& result) {
  const bool fresh = FrontCache::insert(key, result);
  if (!fresh) return false;
  const std::lock_guard<std::mutex> lock(store_mutex_);
  if (store_ == nullptr) return true;
  const std::vector<std::uint8_t> payload = encode_result(result);
  const auto wrote =
      with_retry("put", [&] { return store_->put(key, payload); });
  if (wrote.has_value() && *wrote) ++pstats_.store_writes;
  return true;
}

bool PersistentFrontCache::persistent() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return store_ != nullptr;
}

PersistentCacheStats PersistentFrontCache::persistence_stats() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return pstats_;
}

std::optional<RecoveryReport> PersistentFrontCache::recovery() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return recovery_;
}

std::optional<StoreStats> PersistentFrontCache::store_stats() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  if (store_ == nullptr) return std::nullopt;
  return store_->stats();
}

void PersistentFrontCache::compact() {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  if (store_ == nullptr) return;
  (void)with_retry("compact", [&] {
    store_->compact(/*force=*/true);
    return true;
  });
}

}  // namespace adtp::store
