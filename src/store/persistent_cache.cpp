#include "store/persistent_cache.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "store/codec.hpp"

namespace adtp::store {

PersistentFrontCache::PersistentFrontCache(std::string dir,
                                           PersistentCacheOptions options)
    : FrontCache(options.memory_capacity), options_(std::move(options)) {
  if (options_.follower) options_.store.mode = AttachMode::Follower;
  // Transient open failures (most commonly a follower attaching before
  // the writer has published CURRENT) are polled within the configured
  // grace period; anything permanent - or the grace running out -
  // degrades to memory-only as before.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.open_retry_seconds));
  for (;;) {
    try {
      store_ = std::make_shared<FrontStore>(dir, options_.store);
      recovery_ = store_->recovery();
      break;
    } catch (const StoreError& e) {
      ++pstats_.store_errors;
      if (!e.transient() || std::chrono::steady_clock::now() >= deadline) {
        degrade_locked(std::string("open failed: ") + e.what());
        break;
      }
      ++pstats_.retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

PersistentFrontCache::~PersistentFrontCache() = default;

void PersistentFrontCache::note(const std::string& what) {
  if (options_.on_store_error) options_.on_store_error(what);
}

void PersistentFrontCache::degrade_locked(const std::string& why) {
  store_.reset();
  pstats_.degraded = true;
  note("persistent front cache degraded to memory-only: " + why);
}

std::shared_ptr<FrontStore> PersistentFrontCache::snapshot() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return store_;
}

template <typename Fn>
auto PersistentFrontCache::with_retry(const char* doing, Fn&& fn)
    -> std::optional<decltype(fn(std::declval<FrontStore&>()))> {
  double backoff = options_.retry_backoff_seconds;
  for (int attempt = 0;; ++attempt) {
    // Re-snapshot each attempt: a concurrent degrade ends the retries.
    const std::shared_ptr<FrontStore> store = snapshot();
    if (store == nullptr) return std::nullopt;
    try {
      return fn(*store);
    } catch (const StoreError& e) {
      const std::lock_guard<std::mutex> lock(store_mutex_);
      ++pstats_.store_errors;
      if (!e.transient() || attempt >= options_.max_retries) {
        degrade_locked(std::string(doing) + ": " + e.what());
        return std::nullopt;
      }
      ++pstats_.retries;
    }
    // The sleep holds no lock: other keys keep hitting the store (it is
    // internally synchronized) while this operation backs off.
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2;
    }
  }
}

std::optional<AnalysisResult> PersistentFrontCache::lookup(
    const FrontCacheKey& key) {
  if (auto hit = FrontCache::lookup(key)) return hit;
  // Memory miss (booked as such in the base stats); consult the store.
  const auto payload =
      with_retry("get", [&](FrontStore& store) { return store.get(key); });
  if (!payload.has_value() || !payload->has_value()) return std::nullopt;
  AnalysisResult result;
  try {
    result = decode_result((*payload)->data(), (*payload)->size());
  } catch (const CodecError& e) {
    // Checksums passed but the bytes don't decode (version skew, codec
    // bug). Count it, never serve it; the store itself stays up.
    const std::lock_guard<std::mutex> lock(store_mutex_);
    ++pstats_.decode_failures;
    note(std::string("stored payload failed to decode: ") + e.what());
    return std::nullopt;
  }
  {
    const std::lock_guard<std::mutex> lock(store_mutex_);
    ++pstats_.store_hits;
  }
  FrontCache::insert(key, result);  // promote so the next hit is memory
  return result;
}

bool PersistentFrontCache::insert(const FrontCacheKey& key,
                                  const AnalysisResult& result) {
  const bool fresh = FrontCache::insert(key, result);
  if (!fresh) return false;
  const std::shared_ptr<FrontStore> store = snapshot();
  // A follower never appends; the entry stays memory-only until this
  // process is promoted to writer (the check is the store's live mode,
  // so post-promotion inserts persist without reconstruction).
  if (store == nullptr || store->follower()) return true;
  const std::vector<std::uint8_t> payload = encode_result(result);
  const auto wrote = with_retry(
      "put", [&](FrontStore& s) { return s.put(key, payload); });
  if (wrote.has_value() && *wrote) {
    const std::lock_guard<std::mutex> lock(store_mutex_);
    ++pstats_.store_writes;
  }
  return true;
}

bool PersistentFrontCache::persistent() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return store_ != nullptr;
}

bool PersistentFrontCache::follower() const {
  const std::shared_ptr<FrontStore> store = snapshot();
  return store != nullptr && store->follower();
}

PersistentCacheStats PersistentFrontCache::persistence_stats() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return pstats_;
}

std::optional<RecoveryReport> PersistentFrontCache::recovery() const {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  return recovery_;
}

std::optional<StoreStats> PersistentFrontCache::store_stats() const {
  const std::shared_ptr<FrontStore> store = snapshot();
  if (store == nullptr) return std::nullopt;
  return store->stats();
}

void PersistentFrontCache::compact() {
  (void)with_retry("compact", [&](FrontStore& store) {
    store.compact(/*force=*/true);
    return true;
  });
}

std::optional<RefreshReport> PersistentFrontCache::refresh() {
  return with_retry("refresh",
                    [&](FrontStore& store) { return store.refresh(); });
}

bool PersistentFrontCache::promote() {
  // Not with_retry: "the writer is still alive" is the expected answer
  // while polling, and must never degrade the cache (contract 5 says
  // analysis keeps working; a follower that failed to promote keeps
  // serving reads).
  const std::shared_ptr<FrontStore> store = snapshot();
  if (store == nullptr) return false;
  try {
    store->promote();
    return true;
  } catch (const StoreError& e) {
    const std::lock_guard<std::mutex> lock(store_mutex_);
    ++pstats_.store_errors;
    note(std::string("promote failed: ") + e.what());
    return false;
  }
}

}  // namespace adtp::store
