/// \file shard.hpp
/// \brief Crash-safe, append-only persistent store of encoded analysis
///        results, keyed by FrontCacheKey.
///
/// A FrontStore is a directory holding one *generation* of a shard - a
/// payload log plus an index of fixed-size records - and a CURRENT file
/// naming the live generation:
///
///   <dir>/CURRENT            "g<gen>\n", rewritten via tmp + rename
///   <dir>/shard-<gen>.data   16-byte header, then raw payload bytes
///   <dir>/shard-<gen>.idx    16-byte header, then 56-byte index records
///
/// Commit protocol (write-then-publish): an entry's payload is appended
/// to the data file and fsynced *before* its index record is appended -
/// the index record is the publication. A crash between the two leaves
/// unreachable payload bytes, never a record pointing at missing or
/// partial data. Each index record carries the key, the payload's
/// offset/length, an FNV-1a checksum of the payload, and an FNV-1a
/// checksum of the record itself.
///
/// Recovery on open scans the index: a record is *live* only if it is
/// complete, its record checksum matches, its payload lies within the
/// data file, and the payload bytes match their checksum. Invalid
/// records are skipped (counted, never served); a partial or invalid
/// tail is truncated from both files, so a crashed append disappears
/// entirely. Under the kill -9 crash model the recovered set is exactly
/// a prefix of the committed entries (the crash-matrix test in
/// tests/store sweeps every byte offset to hold it there). A stale
/// format version or foreign magic is treated as "nothing recoverable":
/// the store starts a fresh generation rather than guess at bytes it
/// cannot verify.
///
/// Entries are immutable and deduplicated on put (analysis results are
/// deterministic functions of the key, so the first write wins - same
/// rule as FrontCache::insert). Eviction is logical: over max_entries,
/// the oldest entries leave the in-memory map and their file bytes
/// become dead. Compaction rewrites the live entries into generation
/// g+1, fsyncs, atomically republishes CURRENT, and removes the old
/// files; a crash mid-compaction leaves CURRENT on the old, complete
/// generation.
///
/// Multi-process sharing (single writer, many readers): a *writer*
/// holds <dir>/LOCK - an exclusive flock taken at open and released
/// only by close or process death (kill -9 included) - so a second
/// writer open fails with a clear StoreError instead of interleaving
/// appends into the same log. Any number of *followers*
/// (AttachMode::Follower) attach read-only without the lease: they
/// never truncate, never append, and serve only records that pass the
/// same checksum discipline as recovery, so a torn writer tail is
/// invisible to them. refresh() picks up entries the live writer
/// appended since attach (and re-reads CURRENT across a compaction -
/// published generations are immutable, so a follower never observes a
/// half-built one). When the writer dies, its lease evaporates with it
/// and promote() turns a follower into the writer: it takes the LOCK,
/// re-runs full writer recovery (torn-tail truncation included), and
/// appends from exactly the committed prefix - the crash-matrix suite
/// holds writer-death-at-every-byte-offset to that contract with a
/// live follower watching.
///
/// All file I/O goes through the FileOps seam (util/fault.hpp). Methods
/// throw StoreError (transient iff the underlying IoError was) - the
/// PersistentFrontCache layer above turns that into retry + graceful
/// degradation; this layer never degrades silently.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/front_cache.hpp"
#include "util/fault.hpp"

namespace adtp::store {

/// A store operation failed; \p transient mirrors IoError::transient().
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what, bool transient = false)
      : Error(what), transient_(transient) {}

  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// What open() found and what it did about it.
struct RecoveryReport {
  std::uint64_t entries_recovered = 0;  ///< live entries after the scan
  std::uint64_t bytes_recovered = 0;    ///< payload bytes of those entries
  /// Complete records whose record or payload checksum failed, or whose
  /// payload range fell outside the data file - skipped, never served.
  std::uint64_t records_skipped = 0;
  /// Later records repeating an already-live key - skipped (first wins).
  std::uint64_t duplicates_skipped = 0;
  /// Bytes truncated off the two files (partial tail record + payload
  /// bytes beyond the last live entry).
  std::uint64_t tail_bytes_truncated = 0;
  /// True when CURRENT pointed at files with a wrong magic or version:
  /// nothing was served from them and a fresh generation was started.
  bool stale_generation = false;
};

/// How a FrontStore attaches to its directory.
enum class AttachMode : std::uint8_t {
  /// Takes the exclusive writer lease (<dir>/LOCK) at open; fails with
  /// StoreError when another live process holds it. The only mode that
  /// may append, truncate, or compact.
  Writer,
  /// Attaches read-only without the lease. put/compact throw; refresh()
  /// follows the writer's appends; promote() takes over a dead writer's
  /// lease. Attach requires an initialized store (a CURRENT file) and
  /// throws a transient StoreError until a writer has created one.
  Follower,
};

/// What refresh() found on a follower.
struct RefreshReport {
  /// Live entries gained by this refresh (committed appends picked up,
  /// or the live set of a republished generation).
  std::uint64_t new_entries = 0;
  /// CURRENT moved (the writer compacted): the follower reopened and
  /// rescanned the new generation.
  bool generation_changed = false;
};

struct StoreOptions {
  /// File-system seam; nullptr means real_file_ops().
  FileOps* ops = nullptr;
  /// Writer (lease-holding appender) or read-only follower.
  AttachMode mode = AttachMode::Writer;
  /// Maximum live entries (0 = unbounded); beyond it the oldest entry is
  /// logically evicted on put.
  std::size_t max_entries = 0;
  /// fsync the data file before publishing each index record, and the
  /// index file after. Off, a crash can lose recent *committed* entries
  /// (they may not have reached the index), but recovery still never
  /// serves a corrupt one - durability weakens, integrity does not.
  bool sync_writes = true;
  /// Auto-compact on put when dead payload bytes exceed this fraction of
  /// the data file (and there is at least one dead byte). <= 0 disables.
  double compact_dead_fraction = 0.5;
};

/// Cumulative counters since open (recovery numbers excluded).
struct StoreStats {
  std::uint64_t puts = 0;
  std::uint64_t duplicate_puts = 0;  ///< rejected: key already live
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  /// Entries dropped at read time because their payload no longer
  /// matched its checksum (bit rot after recovery verified it).
  std::uint64_t corrupt_reads = 0;
  std::uint64_t evictions = 0;
  std::uint64_t compactions = 0;
  std::size_t entries = 0;      ///< live entries right now
  std::uint64_t data_bytes = 0; ///< data file size (header included)
  std::uint64_t dead_bytes = 0; ///< payload bytes of evicted entries
};

class FrontStore {
 public:
  /// Opens (creating or recovering) the store in directory \p dir.
  /// Throws StoreError when the directory cannot be created or the shard
  /// files cannot be opened/scanned.
  explicit FrontStore(std::string dir, StoreOptions options = {});
  ~FrontStore();

  FrontStore(const FrontStore&) = delete;
  FrontStore& operator=(const FrontStore&) = delete;

  /// Stores \p payload under \p key. Returns false (and writes nothing)
  /// when the key is already live. Throws StoreError on I/O failure; the
  /// store stays consistent (a failed append is invisible to readers and
  /// to recovery).
  bool put(const FrontCacheKey& key, const std::uint8_t* payload,
           std::size_t size);
  bool put(const FrontCacheKey& key, const std::vector<std::uint8_t>& payload);

  /// Returns the payload stored under \p key, or nullopt when absent.
  /// A payload that fails its checksum at read time is dropped and
  /// reported as absent - a corrupt front is never served.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const FrontCacheKey& key);

  [[nodiscard]] bool contains(const FrontCacheKey& key) const;

  /// Rewrites the live entries into a new generation and republishes
  /// CURRENT atomically. No-op on an empty dead set unless \p force.
  void compact(bool force = false);

  /// True while attached read-only (promote() flips this off).
  [[nodiscard]] bool follower() const;

  /// Follower only (writer: no-op returning {}): re-reads CURRENT and
  /// picks up entries the writer committed since attach or the last
  /// refresh. A partially appended tail is simply not picked up yet -
  /// the next refresh retries from the same offset; nothing is ever
  /// truncated. Throws StoreError (transient for retryable conditions)
  /// when the store cannot be read at all.
  RefreshReport refresh();

  /// Follower only: takes over the writer lease. Throws a *transient*
  /// StoreError while the previous writer still holds it (the caller
  /// polls); on success the store re-runs full writer recovery - the
  /// torn tail the dead writer left, if any, is truncated exactly as a
  /// restart would - and put/compact work from then on.
  void promote();

  [[nodiscard]] const RecoveryReport& recovery() const noexcept {
    return recovery_;
  }
  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] std::uint64_t generation() const noexcept { return gen_; }

 private:
  struct Entry {
    std::uint64_t offset = 0;  ///< payload offset in the data file
    std::uint32_t length = 0;
    std::uint64_t checksum = 0;  ///< FNV-1a of the payload bytes
  };

  struct KeyHash {
    std::size_t operator()(const FrontCacheKey& k) const noexcept;
  };

  // All private methods below expect mutex_ held.
  void open_or_create();
  void open_follower();
  void acquire_lease();
  void release_lease() noexcept;
  void start_fresh_generation();
  void create_generation(std::uint64_t gen);
  void publish_current(std::uint64_t gen);
  /// Reads CURRENT; nullopt when the file is absent or malformed.
  [[nodiscard]] std::optional<std::uint64_t> read_current();
  /// Decodes and applies index records from \p start_idx to the current
  /// end of the index file, trimming (and, for writers, truncating)
  /// trailing invalid records. Returns the live entries gained.
  std::uint64_t scan_records(std::uint64_t start_idx, bool truncate_tail);
  void close_files() noexcept;
  void evict_oldest_locked();
  void compact_locked(bool force);
  void rollback_tail(std::uint64_t data_size, std::uint64_t idx_size) noexcept;
  void drop_generation_files(std::uint64_t gen) noexcept;
  [[nodiscard]] std::uint64_t next_free_generation();
  [[nodiscard]] std::string data_path(std::uint64_t gen) const;
  [[nodiscard]] std::string idx_path(std::uint64_t gen) const;

  std::string dir_;
  StoreOptions options_;
  FileOps* ops_;  ///< resolved (never null after construction)

  mutable std::mutex mutex_;
  AttachMode mode_ = AttachMode::Writer;
  std::uint64_t gen_ = 0;
  int lock_fd_ = -1;  ///< the writer lease; held for the store's lifetime
  int data_fd_ = -1;  ///< -1 also flags a broken store (rollback failed)
  int idx_fd_ = -1;
  std::uint64_t data_size_ = 0;  ///< append offset of the data file
  std::uint64_t idx_size_ = 0;   ///< append offset of the index file
  std::unordered_map<FrontCacheKey, Entry, KeyHash> map_;
  /// Live keys in insertion order (eviction order); evicted keys are
  /// removed, so the front is always the oldest live entry.
  std::deque<FrontCacheKey> order_;
  std::uint64_t dead_bytes_ = 0;
  RecoveryReport recovery_;
  StoreStats stats_;
};

}  // namespace adtp::store
