/// \file codec.hpp
/// \brief Versioned binary codec for analysis results and fronts.
///
/// The persistent front store needs results as bytes; this codec is the
/// contract for those bytes. Encoding is little-endian, length-prefixed
/// where variable, and *bit-exact* on doubles: values round-trip by
/// IEEE-754 bit pattern (memcpy, never text), so +-infinity, subnormals
/// and negative zero decode to the same bits that were encoded - the
/// property that lets a store-warm restart serve fronts bit-identical
/// to cold analysis (docs/CONTRACTS.md contract 5).
///
/// Every encoding starts with a codec version (kCodecVersion). Decoders
/// reject unknown versions, truncated buffers, out-of-range enum tags,
/// and trailing bytes with CodecError - a corrupt or stale payload is
/// detected, never misread. The shard layer adds its own checksums on
/// top; the codec's checks are the second line of defense.
///
/// WitnessFront encoding rides along for strategy extraction consumers:
/// witness bit vectors serialize as (size, set-bit indices), which is
/// compact for the sparse vectors real witnesses are.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/analyzer.hpp"
#include "core/pareto.hpp"

namespace adtp::store {

/// Version tag of the encodings below; bump on any layout change.
inline constexpr std::uint16_t kCodecVersion = 1;

/// A buffer failed to decode: wrong version, truncated, bad tag, or
/// trailing bytes. Not an I/O error - the bytes themselves are wrong.
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what) : Error(what) {}
};

/// Appends the encoding of \p result to \p out.
void encode_result(const AnalysisResult& result,
                   std::vector<std::uint8_t>& out);

/// Convenience: the encoding of \p result as a fresh buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_result(
    const AnalysisResult& result);

/// Decodes exactly one result from [data, data + size); throws
/// CodecError unless the buffer is a complete, well-formed encoding
/// with no trailing bytes.
[[nodiscard]] AnalysisResult decode_result(const std::uint8_t* data,
                                           std::size_t size);

/// Appends the encoding of \p front (witness payloads included).
void encode_witness_front(const WitnessFront& front,
                          std::vector<std::uint8_t>& out);

/// Decodes exactly one witness front; same strictness as decode_result.
[[nodiscard]] WitnessFront decode_witness_front(const std::uint8_t* data,
                                                std::size_t size);

}  // namespace adtp::store
