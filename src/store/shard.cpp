#include "store/shard.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/hash.hpp"

namespace adtp::store {

namespace {

// ---- on-disk format --------------------------------------------------------
// Both shard files open with a 16-byte header: an 8-byte magic naming the
// file's role and a little-endian u32 format version (plus 4 reserved
// bytes). Anything else - foreign magic, future version - is "stale":
// recovery serves nothing from it and starts a fresh generation.

constexpr std::array<std::uint8_t, 8> kDataMagic = {'A', 'D', 'T', 'P',
                                                    'd', 'a', 't', '1'};
constexpr std::array<std::uint8_t, 8> kIdxMagic = {'A', 'D', 'T', 'P',
                                                   'i', 'd', 'x', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kHeaderSize = 16;

// Fixed-size index record; fixed size is what keeps the scan aligned past
// a corrupt record instead of losing the rest of the file:
//   u64 structure | u64 attribution | u64 options |
//   u64 offset    | u32 length      | u32 flags   |
//   u64 payload_checksum | u64 record_checksum (FNV-1a of bytes [0, 48))
constexpr std::uint64_t kRecordSize = 56;
constexpr std::size_t kRecordChecksumAt = 48;

void put_u32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[i]} << (8 * i);
  return v;
}

std::array<std::uint8_t, kHeaderSize> make_header(
    const std::array<std::uint8_t, 8>& magic) {
  std::array<std::uint8_t, kHeaderSize> h{};
  std::memcpy(h.data(), magic.data(), magic.size());
  put_u32(h.data() + 8, kFormatVersion);
  return h;
}

std::uint64_t checksum_bytes(const std::uint8_t* data, std::size_t size) {
  return Fnv1a().bytes(data, size).digest();
}

struct RawRecord {
  FrontCacheKey key;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::uint64_t payload_checksum = 0;
  bool valid = false;
};

std::array<std::uint8_t, kRecordSize> encode_record(
    const FrontCacheKey& key, std::uint64_t offset, std::uint32_t length,
    std::uint64_t payload_checksum) {
  std::array<std::uint8_t, kRecordSize> rec{};
  put_u64(rec.data() + 0, key.structure);
  put_u64(rec.data() + 8, key.attribution);
  put_u64(rec.data() + 16, key.options);
  put_u64(rec.data() + 24, offset);
  put_u32(rec.data() + 32, length);
  put_u32(rec.data() + 36, 0);  // flags, reserved
  put_u64(rec.data() + 40, payload_checksum);
  put_u64(rec.data() + kRecordChecksumAt,
          checksum_bytes(rec.data(), kRecordChecksumAt));
  return rec;
}

RawRecord decode_record(const std::array<std::uint8_t, kRecordSize>& rec) {
  RawRecord out;
  out.key.structure = get_u64(rec.data() + 0);
  out.key.attribution = get_u64(rec.data() + 8);
  out.key.options = get_u64(rec.data() + 16);
  out.offset = get_u64(rec.data() + 24);
  out.length = get_u32(rec.data() + 32);
  out.payload_checksum = get_u64(rec.data() + 40);
  out.valid = get_u64(rec.data() + kRecordChecksumAt) ==
              checksum_bytes(rec.data(), kRecordChecksumAt);
  return out;
}

[[noreturn]] void rethrow_as_store_error(const char* doing, const IoError& e) {
  throw StoreError(std::string(doing) + ": " + e.what(), e.transient());
}

bool header_ok(FileOps& ops, int fd,
               const std::array<std::uint8_t, 8>& magic) {
  if (ops.file_size(fd) < kHeaderSize) return false;
  std::array<std::uint8_t, kHeaderSize> h{};
  if (!ops.pread_all(fd, h.data(), h.size(), 0)) return false;
  return std::memcmp(h.data(), magic.data(), magic.size()) == 0 &&
         get_u32(h.data() + 8) == kFormatVersion;
}

}  // namespace

std::size_t FrontStore::KeyHash::operator()(
    const FrontCacheKey& k) const noexcept {
  std::uint64_t h = hash_combine(k.structure, k.attribution);
  h = hash_combine(h, k.options);
  return static_cast<std::size_t>(h);
}

FrontStore::FrontStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)),
      options_(options),
      ops_(options.ops != nullptr ? options.ops : &real_file_ops()),
      mode_(options.mode) {
  const std::lock_guard<std::mutex> lock(mutex_);
  try {
    if (mode_ == AttachMode::Follower) {
      open_follower();
    } else {
      open_or_create();
    }
  } catch (const IoError& e) {
    close_files();
    release_lease();
    rethrow_as_store_error("store open", e);
  } catch (...) {
    close_files();
    release_lease();
    throw;
  }
}

FrontStore::~FrontStore() {
  const std::lock_guard<std::mutex> lock(mutex_);
  close_files();
  release_lease();
}

void FrontStore::acquire_lease() {
  if (lock_fd_ >= 0) return;
  int fd = -1;
  try {
    fd = ops_->try_lock_file(dir_ + "/LOCK");
  } catch (const IoError& e) {
    rethrow_as_store_error("store lock", e);
  }
  if (fd < 0) {
    // Transient: the holder may die (its lease evaporates with it), so
    // "wait and retry" is a legitimate response - but appending without
    // the lease never is.
    throw StoreError("store " + dir_ +
                         " is locked by another writer (LOCK held); attach "
                         "as a follower or wait for the lease",
                     /*transient=*/true);
  }
  lock_fd_ = fd;
}

void FrontStore::release_lease() noexcept {
  if (lock_fd_ >= 0) ops_->close_fd(lock_fd_);
  lock_fd_ = -1;
}

std::string FrontStore::data_path(std::uint64_t gen) const {
  return dir_ + "/shard-" + std::to_string(gen) + ".data";
}

std::string FrontStore::idx_path(std::uint64_t gen) const {
  return dir_ + "/shard-" + std::to_string(gen) + ".idx";
}

void FrontStore::close_files() noexcept {
  if (data_fd_ >= 0) ops_->close_fd(data_fd_);
  if (idx_fd_ >= 0) ops_->close_fd(idx_fd_);
  data_fd_ = -1;
  idx_fd_ = -1;
}

std::uint64_t FrontStore::next_free_generation() {
  // Never reuse a generation number that has files on disk - a crashed
  // compaction may have left a half-written higher generation behind.
  std::uint64_t max_gen = 0;
  for (const std::string& name : ops_->list_dir(dir_)) {
    if (name.rfind("shard-", 0) != 0) continue;
    const std::size_t dot = name.find('.', 6);
    if (dot == std::string::npos) continue;
    std::uint64_t gen = 0;
    bool numeric = dot > 6;
    for (std::size_t i = 6; i < dot && numeric; ++i) {
      const char c = name[i];
      numeric = c >= '0' && c <= '9';
      if (numeric) gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (numeric) max_gen = std::max(max_gen, gen);
  }
  return max_gen + 1;
}

void FrontStore::publish_current(std::uint64_t gen) {
  const std::string tmp = dir_ + "/CURRENT.tmp";
  const int fd = ops_->open_file(tmp, FileOps::OpenMode::Truncate);
  try {
    const std::string body = "g" + std::to_string(gen) + "\n";
    ops_->write_all(fd, body.data(), body.size());
    ops_->sync_file(fd);
  } catch (...) {
    ops_->close_fd(fd);
    throw;
  }
  ops_->close_fd(fd);
  ops_->rename_file(tmp, dir_ + "/CURRENT");
  ops_->sync_dir(dir_);
}

void FrontStore::create_generation(std::uint64_t gen) {
  gen_ = gen;
  data_fd_ = ops_->open_file(data_path(gen), FileOps::OpenMode::Truncate);
  idx_fd_ = ops_->open_file(idx_path(gen), FileOps::OpenMode::Truncate);
  const auto data_header = make_header(kDataMagic);
  const auto idx_header = make_header(kIdxMagic);
  ops_->write_all(data_fd_, data_header.data(), data_header.size());
  ops_->write_all(idx_fd_, idx_header.data(), idx_header.size());
  if (options_.sync_writes) {
    ops_->sync_file(data_fd_);
    ops_->sync_file(idx_fd_);
  }
  data_size_ = kHeaderSize;
  idx_size_ = kHeaderSize;
}

void FrontStore::start_fresh_generation() {
  recovery_.stale_generation = true;
  close_files();
  const std::uint64_t old = gen_;
  create_generation(next_free_generation());
  publish_current(gen_);
  if (old != 0 && old != gen_) drop_generation_files(old);
}

std::optional<std::uint64_t> FrontStore::read_current() {
  // Parse CURRENT ("g<gen>\n"). Malformed contents mean the pointer
  // itself cannot be trusted.
  std::string body;
  {
    const int fd =
        ops_->open_file(dir_ + "/CURRENT", FileOps::OpenMode::Read);
    try {
      const std::uint64_t size = std::min<std::uint64_t>(ops_->file_size(fd), 64);
      body.resize(static_cast<std::size_t>(size));
      if (!body.empty() && !ops_->pread_all(fd, body.data(), body.size(), 0)) {
        body.clear();
      }
    } catch (...) {
      ops_->close_fd(fd);
      throw;
    }
    ops_->close_fd(fd);
  }
  std::uint64_t gen = 0;
  bool parsed = body.size() >= 3 && body.front() == 'g' && body.back() == '\n';
  for (std::size_t i = 1; i + 1 < body.size() && parsed; ++i) {
    parsed = body[i] >= '0' && body[i] <= '9';
    if (parsed) gen = gen * 10 + static_cast<std::uint64_t>(body[i] - '0');
  }
  if (!parsed || gen == 0) return std::nullopt;
  return gen;
}

void FrontStore::open_or_create() {
  ops_->make_dir(dir_);
  // The lease comes first: everything after it may append or truncate,
  // and two processes doing that to one log is how logs get corrupted.
  acquire_lease();
  if (!ops_->exists(dir_ + "/CURRENT")) {
    create_generation(next_free_generation());
    publish_current(gen_);
    return;
  }

  const std::optional<std::uint64_t> gen = read_current();
  if (!gen.has_value()) {
    // Untrustworthy pointer: recover nothing, start fresh.
    start_fresh_generation();
    return;
  }

  gen_ = *gen;
  data_fd_ = ops_->open_file(data_path(gen_), FileOps::OpenMode::Append);
  idx_fd_ = ops_->open_file(idx_path(gen_), FileOps::OpenMode::Append);
  if (!header_ok(*ops_, data_fd_, kDataMagic) ||
      !header_ok(*ops_, idx_fd_, kIdxMagic)) {
    start_fresh_generation();
    return;
  }
  data_size_ = kHeaderSize;
  idx_size_ = kHeaderSize;
  scan_records(kHeaderSize, /*truncate_tail=*/true);
  dead_bytes_ = data_size_ - kHeaderSize - recovery_.bytes_recovered;
}

void FrontStore::open_follower() {
  if (!ops_->exists(dir_ + "/CURRENT")) {
    // Transient: a writer may initialize the directory any moment.
    throw StoreError(
        "store " + dir_ + " has no CURRENT yet (no writer initialized it)",
        /*transient=*/true);
  }
  const std::optional<std::uint64_t> gen = read_current();
  if (!gen.has_value()) {
    throw StoreError("store " + dir_ + " has a malformed CURRENT");
  }
  gen_ = *gen;
  try {
    data_fd_ = ops_->open_file(data_path(gen_), FileOps::OpenMode::Read);
    idx_fd_ = ops_->open_file(idx_path(gen_), FileOps::OpenMode::Read);
  } catch (const IoError& e) {
    // The published generation can vanish between reading CURRENT and
    // opening its files only while the writer swaps generations; the
    // next attempt sees the new CURRENT.
    throw StoreError(
        "store " + dir_ + " generation " + std::to_string(gen_) +
            " unreadable (writer compacting?): " + e.what(),
        /*transient=*/true);
  }
  if (!header_ok(*ops_, data_fd_, kDataMagic) ||
      !header_ok(*ops_, idx_fd_, kIdxMagic)) {
    // A follower cannot start a fresh generation; only a writer may
    // decide the published one is unrecoverable.
    throw StoreError("store " + dir_ + " generation " + std::to_string(gen_) +
                     " has a stale or foreign header");
  }
  data_size_ = kHeaderSize;
  idx_size_ = kHeaderSize;
  scan_records(kHeaderSize, /*truncate_tail=*/false);
  dead_bytes_ = data_size_ - kHeaderSize - recovery_.bytes_recovered;
}

std::uint64_t FrontStore::scan_records(std::uint64_t start_idx,
                                       bool truncate_tail) {
  const std::uint64_t data_file_size = ops_->file_size(data_fd_);
  const std::uint64_t idx_file_size = ops_->file_size(idx_fd_);
  if (idx_file_size <= start_idx) return 0;
  const std::uint64_t n_records = (idx_file_size - start_idx) / kRecordSize;

  // First pass: decode every complete record and settle its validity -
  // record checksum, payload bounds, payload checksum. The distinction
  // between "skipped" and "truncated/in-progress" needs the position of
  // the last valid record, so validity is settled before anything is
  // applied.
  std::vector<RawRecord> records;
  records.reserve(static_cast<std::size_t>(n_records));
  std::vector<std::uint8_t> payload;
  for (std::uint64_t i = 0; i < n_records; ++i) {
    std::array<std::uint8_t, kRecordSize> raw{};
    if (!ops_->pread_all(idx_fd_, raw.data(), raw.size(),
                         start_idx + i * kRecordSize)) {
      break;  // file shrank under us; treat the rest as absent
    }
    RawRecord rec = decode_record(raw);
    if (rec.valid) {
      rec.valid = rec.offset >= kHeaderSize &&
                  rec.offset + rec.length <= data_file_size;
    }
    if (rec.valid) {
      payload.resize(rec.length);
      rec.valid =
          (rec.length == 0 ||
           ops_->pread_all(data_fd_, payload.data(), payload.size(),
                           rec.offset)) &&
          checksum_bytes(payload.data(), payload.size()) == rec.payload_checksum;
    }
    records.push_back(rec);
  }

  // Trailing invalid records are a torn tail for a recovering writer,
  // and an append still in flight for a follower - either way they are
  // not applied. Followers retry from the same offset next refresh.
  std::size_t n_keep = records.size();
  while (n_keep > 0 && !records[n_keep - 1].valid) --n_keep;

  std::uint64_t data_end = data_size_;
  std::uint64_t gained = 0;
  for (std::size_t i = 0; i < n_keep; ++i) {
    const RawRecord& rec = records[i];
    if (!rec.valid) {
      ++recovery_.records_skipped;  // mid-file damage: skip, keep scanning
      continue;
    }
    data_end = std::max(data_end, rec.offset + rec.length);
    if (map_.count(rec.key) != 0) {
      ++recovery_.duplicates_skipped;  // first record for a key wins
      continue;
    }
    map_.emplace(rec.key, Entry{rec.offset, rec.length, rec.payload_checksum});
    order_.push_back(rec.key);
    recovery_.bytes_recovered += rec.length;
    ++gained;
  }
  recovery_.entries_recovered = map_.size();

  const std::uint64_t idx_end = start_idx + n_keep * kRecordSize;
  if (truncate_tail) {
    // Writers truncate the torn tail: trailing invalid/partial index
    // records and any payload bytes past the last valid record's
    // payload. Committed entries are untouched - this only removes what
    // a crashed append (or tail corruption) left behind. Followers
    // NEVER take this branch: the files belong to the writer.
    if (idx_file_size > idx_end) {
      ops_->truncate_file(idx_fd_, idx_end);
      recovery_.tail_bytes_truncated += idx_file_size - idx_end;
    }
    if (data_file_size > data_end) {
      ops_->truncate_file(data_fd_, data_end);
      recovery_.tail_bytes_truncated += data_file_size - data_end;
    }
  }
  data_size_ = data_end;
  idx_size_ = idx_end;

  if (options_.max_entries != 0) {
    while (map_.size() > options_.max_entries) evict_oldest_locked();
  }
  return gained;
}

bool FrontStore::follower() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return mode_ == AttachMode::Follower;
}

RefreshReport FrontStore::refresh() {
  const std::lock_guard<std::mutex> lock(mutex_);
  RefreshReport report;
  if (mode_ != AttachMode::Follower) return report;
  if (data_fd_ < 0) throw StoreError("store is broken (earlier I/O failure)");
  try {
    const std::optional<std::uint64_t> gen = read_current();
    if (!gen.has_value()) {
      throw IoError("CURRENT unreadable during refresh", /*transient=*/true);
    }
    if (*gen != gen_) {
      // The writer republished (compaction): drop the in-memory index
      // and attach to the new generation. Its files are complete before
      // CURRENT ever names them, so the full rescan sees a committed
      // set.
      close_files();
      map_.clear();
      order_.clear();
      dead_bytes_ = 0;
      gen_ = *gen;
      data_fd_ = ops_->open_file(data_path(gen_), FileOps::OpenMode::Read);
      idx_fd_ = ops_->open_file(idx_path(gen_), FileOps::OpenMode::Read);
      if (!header_ok(*ops_, data_fd_, kDataMagic) ||
          !header_ok(*ops_, idx_fd_, kIdxMagic)) {
        throw IoError("republished generation has a stale header");
      }
      data_size_ = kHeaderSize;
      idx_size_ = kHeaderSize;
      report.generation_changed = true;
      report.new_entries = scan_records(kHeaderSize, /*truncate_tail=*/false);
    } else {
      report.new_entries = scan_records(idx_size_, /*truncate_tail=*/false);
    }
  } catch (const IoError& e) {
    rethrow_as_store_error("store refresh", e);
  }
  return report;
}

void FrontStore::promote() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ == AttachMode::Writer) return;
  acquire_lease();  // throws a transient StoreError while the writer lives
  // Lease in hand: re-run full writer recovery over the directory, torn
  // tail truncation included - exactly what a restarted writer would do.
  close_files();
  map_.clear();
  order_.clear();
  dead_bytes_ = 0;
  data_size_ = 0;
  idx_size_ = 0;
  recovery_ = RecoveryReport{};
  mode_ = AttachMode::Writer;
  try {
    open_or_create();
  } catch (const IoError& e) {
    close_files();
    rethrow_as_store_error("store promote", e);
  }
}

void FrontStore::rollback_tail(std::uint64_t data_size,
                               std::uint64_t idx_size) noexcept {
  // Best effort: trim the partial append so in-process readers never see
  // it. If even the rollback fails (e.g. a simulated crash fails every
  // subsequent op), the fds close and the store reports itself broken -
  // recovery on the next open removes the torn tail instead.
  try {
    ops_->truncate_file(data_fd_, data_size);
    ops_->truncate_file(idx_fd_, idx_size);
  } catch (...) {
    close_files();
  }
}

bool FrontStore::put(const FrontCacheKey& key, const std::uint8_t* payload,
                     std::size_t size) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ == AttachMode::Follower) {
    throw StoreError("follower store is read-only (promote() to write)");
  }
  if (data_fd_ < 0) throw StoreError("store is broken (earlier I/O failure)");
  if (map_.count(key) != 0) {
    ++stats_.duplicate_puts;
    return false;
  }
  const std::uint64_t offset = data_size_;
  const std::uint64_t idx_committed = idx_size_;
  const std::uint64_t payload_checksum = checksum_bytes(payload, size);
  try {
    // Write-then-publish: the payload is on disk (and synced) before the
    // index record that makes it reachable exists at all.
    ops_->write_all(data_fd_, payload, size);
    if (options_.sync_writes) ops_->sync_file(data_fd_);
    const auto rec = encode_record(key, offset,
                                   static_cast<std::uint32_t>(size),
                                   payload_checksum);
    ops_->write_all(idx_fd_, rec.data(), rec.size());
    if (options_.sync_writes) ops_->sync_file(idx_fd_);
  } catch (const IoError& e) {
    rollback_tail(offset, idx_committed);
    rethrow_as_store_error("store put", e);
  }
  data_size_ = offset + size;
  idx_size_ = idx_committed + kRecordSize;
  map_.emplace(key, Entry{offset, static_cast<std::uint32_t>(size),
                          payload_checksum});
  order_.push_back(key);
  ++stats_.puts;
  if (options_.max_entries != 0) {
    while (map_.size() > options_.max_entries) evict_oldest_locked();
  }
  if (options_.compact_dead_fraction > 0 && dead_bytes_ > 0 &&
      static_cast<double>(dead_bytes_) >
          options_.compact_dead_fraction * static_cast<double>(data_size_)) {
    compact_locked(/*force=*/false);
  }
  return true;
}

bool FrontStore::put(const FrontCacheKey& key,
                     const std::vector<std::uint8_t>& payload) {
  return put(key, payload.data(), payload.size());
}

std::optional<std::vector<std::uint8_t>> FrontStore::get(
    const FrontCacheKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.gets;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  if (data_fd_ < 0) throw StoreError("store is broken (earlier I/O failure)");
  const Entry entry = it->second;
  std::vector<std::uint8_t> payload(entry.length);
  bool read_ok = false;
  try {
    read_ok = entry.length == 0 ||
              ops_->pread_all(data_fd_, payload.data(), payload.size(),
                              entry.offset);
  } catch (const IoError& e) {
    rethrow_as_store_error("store get", e);
  }
  if (!read_ok ||
      checksum_bytes(payload.data(), payload.size()) != entry.checksum) {
    // Verified at recovery, wrong now: the bytes rotted underneath us.
    // Drop the entry rather than serve it.
    ++stats_.corrupt_reads;
    dead_bytes_ += entry.length;
    order_.erase(std::find(order_.begin(), order_.end(), key));
    map_.erase(it);
    return std::nullopt;
  }
  ++stats_.get_hits;
  return payload;
}

bool FrontStore::contains(const FrontCacheKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.count(key) != 0;
}

void FrontStore::evict_oldest_locked() {
  const FrontCacheKey victim = order_.front();
  order_.pop_front();
  const auto it = map_.find(victim);
  dead_bytes_ += it->second.length;
  map_.erase(it);
  ++stats_.evictions;
}

void FrontStore::drop_generation_files(std::uint64_t gen) noexcept {
  // Unreferenced once CURRENT moved on; failing to remove them only
  // leaks disk, so errors are ignored.
  try {
    ops_->remove_file(data_path(gen));
  } catch (...) {
  }
  try {
    ops_->remove_file(idx_path(gen));
  } catch (...) {
  }
}

void FrontStore::compact(bool force) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (mode_ == AttachMode::Follower) {
    throw StoreError("follower store is read-only (promote() to compact)");
  }
  if (data_fd_ < 0) throw StoreError("store is broken (earlier I/O failure)");
  try {
    compact_locked(force);
  } catch (const IoError& e) {
    rethrow_as_store_error("store compact", e);
  }
}

void FrontStore::compact_locked(bool force) {
  if (!force && dead_bytes_ == 0) return;
  const std::uint64_t new_gen = next_free_generation();
  const std::string new_data = data_path(new_gen);
  const std::string new_idx = idx_path(new_gen);
  int new_data_fd = -1;
  int new_idx_fd = -1;
  std::unordered_map<FrontCacheKey, Entry, KeyHash> new_map;
  std::uint64_t new_data_size = kHeaderSize;
  std::uint64_t new_idx_size = kHeaderSize;
  try {
    new_data_fd = ops_->open_file(new_data, FileOps::OpenMode::Truncate);
    new_idx_fd = ops_->open_file(new_idx, FileOps::OpenMode::Truncate);
    const auto data_header = make_header(kDataMagic);
    const auto idx_header = make_header(kIdxMagic);
    ops_->write_all(new_data_fd, data_header.data(), data_header.size());
    ops_->write_all(new_idx_fd, idx_header.data(), idx_header.size());
    std::vector<std::uint8_t> payload;
    for (const FrontCacheKey& key : order_) {
      const Entry& old_entry = map_.at(key);
      payload.resize(old_entry.length);
      if (old_entry.length != 0 &&
          !ops_->pread_all(data_fd_, payload.data(), payload.size(),
                           old_entry.offset)) {
        throw IoError("compact: live payload unreadable");
      }
      ops_->write_all(new_data_fd, payload.data(), payload.size());
      const auto rec =
          encode_record(key, new_data_size, old_entry.length,
                        old_entry.checksum);
      ops_->write_all(new_idx_fd, rec.data(), rec.size());
      new_map.emplace(key, Entry{new_data_size, old_entry.length,
                                 old_entry.checksum});
      new_data_size += old_entry.length;
      new_idx_size += kRecordSize;
    }
    ops_->sync_file(new_data_fd);
    ops_->sync_file(new_idx_fd);
    // The point of no return: after this rename + dir sync, the new
    // generation is the store. Any failure before it leaves CURRENT on
    // the old, fully intact generation.
    publish_current(new_gen);
  } catch (...) {
    if (new_data_fd >= 0) ops_->close_fd(new_data_fd);
    if (new_idx_fd >= 0) ops_->close_fd(new_idx_fd);
    try {
      if (ops_->exists(new_data)) ops_->remove_file(new_data);
      if (ops_->exists(new_idx)) ops_->remove_file(new_idx);
    } catch (...) {
    }
    throw;
  }
  const std::uint64_t old_gen = gen_;
  close_files();
  gen_ = new_gen;
  data_fd_ = new_data_fd;
  idx_fd_ = new_idx_fd;
  data_size_ = new_data_size;
  idx_size_ = new_idx_size;
  map_ = std::move(new_map);
  dead_bytes_ = 0;
  ++stats_.compactions;
  drop_generation_files(old_gen);
}

StoreStats FrontStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  StoreStats out = stats_;
  out.entries = map_.size();
  out.data_bytes = data_size_;
  out.dead_bytes = dead_bytes_;
  return out;
}

}  // namespace adtp::store
