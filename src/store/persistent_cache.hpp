/// \file persistent_cache.hpp
/// \brief The in-process FrontCache layered over a crash-safe FrontStore.
///
/// A PersistentFrontCache behaves exactly like the FrontCache it
/// subclasses - same lookup/insert/single-flight surface, so
/// analyze_batch() and the serving daemon take it through a plain
/// FrontCache* - with a disk tier underneath:
///
///   lookup: memory -> store (decode, promote to memory) -> miss
///   insert: memory first; a *fresh* entry is also encoded and appended
///           to the store (first-writer-wins upstream means each result
///           is persisted once)
///
/// The store is strictly advisory. The constructor never throws for
/// store trouble, and no store failure ever surfaces to an analysis
/// caller: transient I/O errors (IoError/StoreError with the transient
/// flag) are retried with bounded exponential backoff; a permanent
/// error, or transient ones beyond the retry budget, *degrade* the cache
/// to memory-only - the store is dropped, on_store_error is told why,
/// and every later call behaves like a plain FrontCache. Analysis never
/// fails because persistence did (docs/CONTRACTS.md contract 5). The
/// backoff sleeps with no lock held: the store is reached through a
/// shared_ptr snapshot (the FrontStore is internally synchronized), so
/// one key's retry storm never serializes lookups on other keys - the
/// internal mutex only guards the pointer swap and the counters.
///
/// Follower mode (PersistentCacheOptions::follower) attaches the store
/// read-only for daemon fleets sharing one directory: lookups are
/// served from disk as usual, fresh inserts stay memory-only instead of
/// appending, refresh() follows the writer's appends, and promote()
/// takes over a dead writer's lease - after which inserts persist
/// again (the write-skip consults the store's live mode, not the
/// construction flag).
///
/// A payload the store serves has already passed its checksums; decode
/// failures (version skew, codec bugs) are counted and treated as
/// misses, never served and never fatal.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/front_cache.hpp"
#include "store/shard.hpp"

namespace adtp::store {

struct PersistentCacheOptions {
  /// Capacity of the in-memory FrontCache tier.
  std::size_t memory_capacity = 256;
  /// Passed through to the FrontStore (seam, bounds, sync policy).
  StoreOptions store;
  /// Attach the store as a read-only follower (sets store.mode); see
  /// the file comment. The writer lease stays with some other process
  /// until promote().
  bool follower = false;
  /// Transient store failures are retried this many times per operation
  /// before the cache degrades to memory-only.
  int max_retries = 3;
  /// Total grace period for a *transient* open failure at construction
  /// before degrading - a follower attaching moments before the writer
  /// has initialized the directory sees exactly that. 0 degrades on the
  /// first failure (the pre-fleet behavior).
  double open_retry_seconds = 0;
  /// First retry backoff; doubles on each further retry.
  double retry_backoff_seconds = 0.001;
  /// Called (with a reason) when the store degrades to memory-only and
  /// on non-fatal anomalies (decode failures). Invoked under an internal
  /// lock: keep it cheap and do not call back into the cache.
  std::function<void(const std::string&)> on_store_error;
};

/// Counters for the persistence tier (the memory tier keeps its own
/// FrontCache::Stats; a store hit is a memory miss there).
struct PersistentCacheStats {
  std::uint64_t store_hits = 0;    ///< lookups served from disk
  std::uint64_t store_writes = 0;  ///< fresh entries appended
  std::uint64_t store_errors = 0;  ///< errors observed (retried included)
  std::uint64_t retries = 0;       ///< transient errors retried
  std::uint64_t decode_failures = 0;
  bool degraded = false;  ///< store dropped; memory-only from then on
};

class PersistentFrontCache final : public FrontCache {
 public:
  /// Opens (creating or recovering) the store under \p dir. Store
  /// failure here does not throw: the cache starts degraded.
  explicit PersistentFrontCache(std::string dir,
                                PersistentCacheOptions options = {});
  ~PersistentFrontCache() override;

  [[nodiscard]] std::optional<AnalysisResult> lookup(
      const FrontCacheKey& key) override;
  bool insert(const FrontCacheKey& key, const AnalysisResult& result) override;

  /// True while the store tier is alive (not degraded).
  [[nodiscard]] bool persistent() const;
  /// True while attached as a (non-degraded) read-only follower.
  [[nodiscard]] bool follower() const;
  [[nodiscard]] PersistentCacheStats persistence_stats() const;
  /// What recovery found at open; nullopt when the store never opened.
  [[nodiscard]] std::optional<RecoveryReport> recovery() const;
  [[nodiscard]] std::optional<StoreStats> store_stats() const;
  /// Forces a store compaction (no-op when degraded).
  void compact();

  /// Follower only: picks up entries the writer committed since attach
  /// or the last refresh (transient trouble retried as usual). Returns
  /// nullopt when degraded; a no-op {} on a writer-mode cache.
  std::optional<RefreshReport> refresh();
  /// Follower only: tries to take over the writer lease. False while
  /// the previous writer still holds it (poll again later) or when
  /// degraded - a failed promotion never degrades the cache, which
  /// keeps serving as a follower.
  bool promote();

 private:
  /// The store under a shared_ptr so operations (and their backoff
  /// sleeps) run without store_mutex_; a concurrent degrade cannot free
  /// the store out from under a caller holding a snapshot.
  [[nodiscard]] std::shared_ptr<FrontStore> snapshot() const;
  /// Runs \p fn(store) with transient-failure retry (sleeping with no
  /// lock held); returns nullopt after degrading. Call with NO lock.
  template <typename Fn>
  auto with_retry(const char* doing, Fn&& fn)
      -> std::optional<decltype(fn(std::declval<FrontStore&>()))>;
  /// Drops the store and flips to memory-only. store_mutex_ must be held.
  void degrade_locked(const std::string& why);
  void note(const std::string& what);

  PersistentCacheOptions options_;
  mutable std::mutex store_mutex_;
  std::shared_ptr<FrontStore> store_;  ///< null once degraded
  PersistentCacheStats pstats_;
  std::optional<RecoveryReport> recovery_;
};

}  // namespace adtp::store
