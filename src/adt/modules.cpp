#include "adt/modules.hpp"

namespace adtp {

ModuleInfo compute_modules(const Adt& adt) {
  adt.require_frozen();
  const std::size_t n = adt.size();

  ModuleInfo info;
  info.descendants.assign(n, BitVec(n));
  info.is_module.assign(n, 0);

  // Descendant sets, children-first (ascending id is topological).
  for (NodeId v : adt.topological_order()) {
    BitVec& desc = info.descendants[v];
    desc.set(v);
    for (NodeId c : adt.children(v)) {
      desc |= info.descendants[c];
    }
  }

  // v is a module iff all parents of every strict descendant stay inside
  // v's descendant set.
  for (NodeId v = 0; v < n; ++v) {
    const BitVec& desc = info.descendants[v];
    bool is_module = true;
    for (std::size_t w : desc.set_bits()) {
      if (w == v) continue;
      for (NodeId parent : adt.parents(static_cast<NodeId>(w))) {
        if (!desc.test(parent)) {
          is_module = false;
          break;
        }
      }
      if (!is_module) break;
    }
    info.is_module[v] = is_module ? 1 : 0;
  }
  return info;
}

}  // namespace adtp
