#include "adt/structure.hpp"

namespace adtp {

namespace {

void check_vectors(const Adt& adt, const BitVec& defense,
                   const BitVec& attack) {
  if (defense.size() != adt.num_defenses()) {
    throw ModelError("structure function: defense vector size " +
                     std::to_string(defense.size()) + " != |D| = " +
                     std::to_string(adt.num_defenses()));
  }
  if (attack.size() != adt.num_attacks()) {
    throw ModelError("structure function: attack vector size " +
                     std::to_string(attack.size()) + " != |A| = " +
                     std::to_string(adt.num_attacks()));
  }
}

void evaluate_into(const Adt& adt, const BitVec& defense, const BitVec& attack,
                   std::vector<char>& values) {
  values.assign(adt.size(), 0);
  // Definition 3, computed in one pass; ascending id is topological.
  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    char value = 0;
    switch (n.type) {
      case GateType::BasicStep:
        value = n.agent == Agent::Attacker
                    ? attack.test(adt.attack_index(v))
                    : defense.test(adt.defense_index(v));
        break;
      case GateType::And: {
        value = 1;
        for (NodeId c : n.children) value = static_cast<char>(value & values[c]);
        break;
      }
      case GateType::Or: {
        value = 0;
        for (NodeId c : n.children) value = static_cast<char>(value | values[c]);
        break;
      }
      case GateType::Inhibit:
        value = static_cast<char>(values[n.children[0]] &&
                                  !values[n.children[1]]);
        break;
    }
    values[v] = value;
  }
}

}  // namespace

std::vector<char> evaluate_all(const Adt& adt, const BitVec& defense,
                               const BitVec& attack) {
  check_vectors(adt, defense, attack);
  std::vector<char> values;
  evaluate_into(adt, defense, attack, values);
  return values;
}

bool evaluate(const Adt& adt, const BitVec& defense, const BitVec& attack,
              NodeId v) {
  return evaluate_all(adt, defense, attack).at(v) != 0;
}

bool evaluate_root(const Adt& adt, const BitVec& defense,
                   const BitVec& attack) {
  return evaluate(adt, defense, attack, adt.root());
}

bool attack_succeeds(const Adt& adt, const BitVec& defense,
                     const BitVec& attack) {
  const bool value = evaluate_root(adt, defense, attack);
  return adt.agent(adt.root()) == Agent::Attacker ? value : !value;
}

StructureEvaluator::StructureEvaluator(const Adt& adt) : adt_(&adt) {
  adt_->require_frozen();
}

bool StructureEvaluator::root_value(const BitVec& defense,
                                    const BitVec& attack) {
  check_vectors(*adt_, defense, attack);
  evaluate_into(*adt_, defense, attack, values_);
  return values_[adt_->root()] != 0;
}

bool StructureEvaluator::attack_succeeds(const BitVec& defense,
                                         const BitVec& attack) {
  const bool value = root_value(defense, attack);
  return adt_->agent(adt_->root()) == Agent::Attacker ? value : !value;
}

}  // namespace adtp
