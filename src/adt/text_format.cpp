#include "adt/text_format.hpp"

#include <cctype>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "util/table.hpp"

namespace adtp {

namespace {

/// A minimal tokenizer for one statement line.
class LineLexer {
 public:
  LineLexer(std::string_view line, std::size_t line_no)
      : line_(line), line_no_(line_no) {}

  /// Next token; punctuation characters are single-char tokens; returns
  /// empty at end of line.
  std::string next() {
    skip_space();
    if (pos_ >= line_.size()) return {};
    const char ch = line_[pos_];
    if (ch == '(' || ch == ')' || ch == ',' || ch == '|' || ch == '=') {
      ++pos_;
      return std::string(1, ch);
    }
    if (ch == '"') {
      ++pos_;
      std::string out;
      while (pos_ < line_.size() && line_[pos_] != '"') {
        out += line_[pos_++];
      }
      if (pos_ >= line_.size()) {
        throw ParseError(line_no_, "unterminated quoted name");
      }
      ++pos_;  // closing quote
      if (out.empty()) throw ParseError(line_no_, "empty quoted name");
      return out;
    }
    std::string out;
    while (pos_ < line_.size() && is_word(line_[pos_])) {
      out += line_[pos_++];
    }
    if (out.empty()) {
      throw ParseError(line_no_, std::string("unexpected character '") + ch +
                                     "'");
    }
    return out;
  }

  std::string expect(std::string_view what) {
    std::string tok = next();
    if (tok.empty()) {
      throw ParseError(line_no_, "expected " + std::string(what) +
                                     " but the line ended");
    }
    return tok;
  }

  void expect_literal(std::string_view lit) {
    const std::string tok = expect("'" + std::string(lit) + "'");
    if (tok != lit) {
      throw ParseError(line_no_, "expected '" + std::string(lit) +
                                     "', got '" + tok + "'");
    }
  }

  void expect_end() {
    const std::string tok = next();
    if (!tok.empty()) {
      throw ParseError(line_no_, "unexpected trailing token '" + tok + "'");
    }
  }

  [[nodiscard]] std::size_t line_no() const noexcept { return line_no_; }

 private:
  static bool is_word(char ch) {
    return std::isalnum(static_cast<unsigned char>(ch)) != 0 || ch == '_' ||
           ch == '@' || ch == '.' || ch == '-' || ch == '+';
  }
  void skip_space() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view line_;
  std::size_t line_no_;
  std::size_t pos_ = 0;
};

double parse_value(const std::string& token, std::size_t line_no) {
  if (token == "inf") return std::numeric_limits<double>::infinity();
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ParseError(line_no, "invalid numeric value '" + token + "'");
  }
}

NodeId resolve(const Adt& adt, const std::string& name, std::size_t line_no) {
  const auto id = adt.find(name);
  if (!id) {
    throw ParseError(line_no, "unknown node '" + name +
                                  "' (nodes must be defined before use)");
  }
  return *id;
}

std::optional<Agent> parse_agent_token(const std::string& tok) {
  if (tok == "A" || tok == "a") return Agent::Attacker;
  if (tok == "D" || tok == "d") return Agent::Defender;
  return std::nullopt;
}

/// Quotes a name for output when it contains non-word characters.
std::string quote_name(const std::string& name) {
  for (char ch : name) {
    const bool word = std::isalnum(static_cast<unsigned char>(ch)) != 0 ||
                      ch == '_' || ch == '@' || ch == '.' || ch == '-';
    if (!word) return '"' + name + '"';
  }
  return name;
}

}  // namespace

ParsedModel parse_adt_text(const std::string& text) {
  ParsedModel model;
  bool have_root = false;
  std::string root_name;
  std::size_t root_line = 0;

  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw.erase(hash);
    }
    LineLexer lex(raw, line_no);
    const std::string first = lex.next();
    if (first.empty()) continue;

    if (first == "domains") {
      const std::string def = lex.expect("defender domain name");
      const std::string att = lex.expect("attacker domain name");
      lex.expect_end();
      const auto def_kind = parse_semiring_kind(def);
      const auto att_kind = parse_semiring_kind(att);
      if (!def_kind) {
        throw ParseError(line_no, "unknown defender domain '" + def + "'");
      }
      if (!att_kind) {
        throw ParseError(line_no, "unknown attacker domain '" + att + "'");
      }
      model.defender_domain = Semiring(*def_kind);
      model.attacker_domain = Semiring(*att_kind);
      continue;
    }

    if (first == "root") {
      root_name = lex.expect("root node name");
      lex.expect_end();
      have_root = true;
      root_line = line_no;
      continue;
    }

    // Node definition: NAME = KIND ...
    const std::string& name = first;
    lex.expect_literal("=");
    const std::string kind = lex.expect("node kind");

    if (kind == "attack" || kind == "defense") {
      const double value = parse_value(lex.expect("value"), line_no);
      lex.expect_end();
      model.adt.add_basic(name, kind == "attack" ? Agent::Attacker
                                                 : Agent::Defender);
      model.attribution.set(name, value);
      continue;
    }

    if (kind == "AND" || kind == "OR") {
      std::string tok = lex.expect("agent or '('");
      std::optional<Agent> agent;
      if (tok != "(") {
        agent = parse_agent_token(tok);
        if (!agent) {
          throw ParseError(line_no,
                           "expected agent A/D or '(', got '" + tok + "'");
        }
        lex.expect_literal("(");
      }
      std::vector<NodeId> children;
      while (true) {
        const std::string child = lex.expect("child name or ')'");
        if (child == ")") break;
        if (child == ",") continue;
        children.push_back(resolve(model.adt, child, line_no));
      }
      lex.expect_end();
      if (children.empty()) {
        throw ParseError(line_no, "gate '" + name + "' has no children");
      }
      if (!agent) agent = model.adt.agent(children[0]);
      model.adt.add_gate(name, kind == "AND" ? GateType::And : GateType::Or,
                         *agent, std::move(children));
      continue;
    }

    if (kind == "INH") {
      lex.expect_literal("(");
      const std::string inhibited = lex.expect("inhibited child");
      lex.expect_literal("|");
      const std::string trigger = lex.expect("trigger child");
      lex.expect_literal(")");
      lex.expect_end();
      model.adt.add_inhibit(name, resolve(model.adt, inhibited, line_no),
                            resolve(model.adt, trigger, line_no));
      continue;
    }

    throw ParseError(line_no, "unknown node kind '" + kind +
                                  "' (expected attack, defense, AND, OR, "
                                  "INH)");
  }

  if (model.adt.size() == 0) {
    throw ParseError(line_no, "the model defines no nodes");
  }
  if (have_root) {
    model.adt.set_root(resolve(model.adt, root_name, root_line));
  }
  model.adt.freeze();
  model.attribution.validate(model.adt);
  return model;
}

std::string to_text_format(const AugmentedAdt& aadt) {
  const Adt& adt = aadt.adt();
  std::ostringstream out;
  out << "# adtpareto model: " << adt.size() << " nodes\n";
  out << "domains " << semiring_kind_name(aadt.defender_domain().kind())
      << ' ' << semiring_kind_name(aadt.attacker_domain().kind()) << '\n';

  for (NodeId v : adt.topological_order()) {
    const Node& n = adt.node(v);
    out << quote_name(n.name) << " = ";
    switch (n.type) {
      case GateType::BasicStep:
        out << (n.agent == Agent::Attacker ? "attack " : "defense ")
            << format_value(aadt.value_of(v));
        break;
      case GateType::And:
      case GateType::Or:
        out << (n.type == GateType::And ? "AND " : "OR ")
            << to_string(n.agent) << " (";
        for (std::size_t i = 0; i < n.children.size(); ++i) {
          if (i != 0) out << ", ";
          out << quote_name(adt.name(n.children[i]));
        }
        out << ")";
        break;
      case GateType::Inhibit:
        out << "INH (" << quote_name(adt.name(n.children[0])) << " | "
            << quote_name(adt.name(n.children[1])) << ")";
        break;
    }
    out << '\n';
  }
  out << "root " << quote_name(adt.name(adt.root())) << '\n';
  return out.str();
}

ParsedModel load_adt_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_adt_text(buffer.str());
}

void save_adt_file(const AugmentedAdt& aadt, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  out << to_text_format(aadt);
  if (!out) {
    throw Error("failed writing '" + path + "'");
  }
}

}  // namespace adtp
