#include "adt/adt.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace adtp {

namespace {

std::string describe(const Node& n, NodeId id) {
  std::ostringstream out;
  out << "node #" << id << " '" << n.name << "' (" << to_string(n.type) << ","
      << to_string(n.agent) << ")";
  return out.str();
}

}  // namespace

void Adt::mutate_guard() {
  // Mutating after freeze() invalidates derived data; allow it but drop
  // the frozen state so stale caches can never be observed.
  if (frozen_) {
    frozen_ = false;
    parents_.clear();
    topo_.clear();
    attack_steps_.clear();
    defense_steps_.clear();
    attack_index_.clear();
    defense_index_.clear();
  }
}

void Adt::check_frozen() const {
  if (!frozen_) {
    throw ModelError(
        "Adt: structural query before freeze(); call freeze() after "
        "construction");
  }
}

NodeId Adt::add_node(Node node) {
  mutate_guard();
  if (node.name.empty()) {
    throw ModelError("Adt: node names must be non-empty");
  }
  if (by_name_.contains(node.name)) {
    throw ModelError("Adt: duplicate node name '" + node.name + "'");
  }
  for (NodeId c : node.children) {
    if (c >= nodes_.size()) {
      throw ModelError("Adt: child id " + std::to_string(c) +
                       " does not exist yet (children must be added before "
                       "parents)");
    }
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(node.name, id);
  nodes_.push_back(std::move(node));
  if (!root_explicit_) root_ = id;
  return id;
}

NodeId Adt::add_basic(std::string name, Agent agent) {
  Node n;
  n.type = GateType::BasicStep;
  n.agent = agent;
  n.name = std::move(name);
  return add_node(std::move(n));
}

NodeId Adt::add_gate(std::string name, GateType type, Agent agent,
                     std::vector<NodeId> children) {
  if (type != GateType::And && type != GateType::Or) {
    throw ModelError("Adt::add_gate accepts only AND/OR; use add_basic or "
                     "add_inhibit for other node kinds");
  }
  if (children.empty()) {
    throw ModelError("Adt: AND/OR gate '" + name +
                     "' must have at least one child");
  }
  Node n;
  n.type = type;
  n.agent = agent;
  n.name = std::move(name);
  n.children = std::move(children);
  return add_node(std::move(n));
}

NodeId Adt::add_inhibit(std::string name, NodeId inhibited, NodeId trigger) {
  if (inhibited >= nodes_.size() || trigger >= nodes_.size()) {
    throw ModelError("Adt: INH gate '" + name +
                     "' references a child that does not exist yet");
  }
  if (inhibited == trigger) {
    throw ModelError("Adt: INH gate '" + name +
                     "' must have two distinct children");
  }
  Node n;
  n.type = GateType::Inhibit;
  n.agent = nodes_[inhibited].agent;
  n.name = std::move(name);
  n.children = {inhibited, trigger};
  return add_node(std::move(n));
}

void Adt::set_root(NodeId root) {
  mutate_guard();
  if (root >= nodes_.size()) {
    throw ModelError("Adt::set_root: node " + std::to_string(root) +
                     " does not exist");
  }
  root_ = root;
  root_explicit_ = true;
}

void Adt::freeze() {
  if (frozen_) return;
  validate();
  compute_derived();
  frozen_ = true;
}

void Adt::validate() const {
  if (nodes_.empty()) {
    throw ModelError("Adt: empty model has no root");
  }

  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.type) {
      case GateType::BasicStep:
        if (!n.children.empty()) {
          throw ModelError("Adt: " + describe(n, id) +
                           " is a basic step but has children");
        }
        break;
      case GateType::And:
      case GateType::Or:
        if (n.children.empty()) {
          throw ModelError("Adt: " + describe(n, id) + " has no children");
        }
        // Definition 1: children of AND/OR share the gate's agent.
        for (NodeId c : n.children) {
          if (nodes_[c].agent != n.agent) {
            throw ModelError("Adt: " + describe(n, id) + " has child '" +
                             nodes_[c].name +
                             "' of the opposite agent (AND/OR children must "
                             "match the gate's agent)");
          }
        }
        break;
      case GateType::Inhibit: {
        if (n.children.size() != 2) {
          throw ModelError("Adt: " + describe(n, id) +
                           " must have exactly two children");
        }
        const Node& inhibited = nodes_[n.children[0]];
        const Node& trigger = nodes_[n.children[1]];
        // Definition 1: the two children have different tau values; our
        // convention additionally fixes tau(theta(v)) = tau(v).
        if (inhibited.agent != n.agent) {
          throw ModelError("Adt: " + describe(n, id) +
                           ": inhibited child must share the gate's agent");
        }
        if (trigger.agent != opponent(n.agent)) {
          throw ModelError("Adt: " + describe(n, id) +
                           ": trigger child must belong to the opposite "
                           "agent");
        }
        break;
      }
    }
  }

  if (root_ >= nodes_.size()) {
    throw ModelError("Adt: no root set");
  }

  // Reachability: every node must contribute to the root. Unreachable
  // nodes would silently be ignored by every algorithm, which is almost
  // certainly a modelling bug, so we reject them.
  std::vector<char> reachable(nodes_.size(), 0);
  std::vector<NodeId> stack{root_};
  reachable[root_] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (NodeId c : nodes_[v].children) {
      if (!reachable[c]) {
        reachable[c] = 1;
        stack.push_back(c);
      }
    }
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) {
      throw ModelError("Adt: " + describe(nodes_[id], id) +
                       " is unreachable from the root '" +
                       nodes_[root_].name + "'");
    }
  }
}

void Adt::compute_derived() {
  const std::size_t n = nodes_.size();
  parents_.assign(n, {});
  for (NodeId id = 0; id < n; ++id) {
    for (NodeId c : nodes_[id].children) {
      parents_[c].push_back(id);
    }
  }

  // Children always have smaller ids than their parents (enforced at
  // construction), so ascending id order is already topological.
  topo_.resize(n);
  for (NodeId id = 0; id < n; ++id) topo_[id] = id;

  attack_steps_.clear();
  defense_steps_.clear();
  for (NodeId id = 0; id < n; ++id) {
    const Node& node = nodes_[id];
    if (node.type != GateType::BasicStep) continue;
    if (node.agent == Agent::Attacker) {
      attack_index_[id] = attack_steps_.size();
      attack_steps_.push_back(id);
    } else {
      defense_index_[id] = defense_steps_.size();
      defense_steps_.push_back(id);
    }
  }
}

NodeId Adt::root() const {
  check_frozen();
  return root_;
}

const Node& Adt::node(NodeId id) const {
  if (id >= nodes_.size()) {
    throw ModelError("Adt: node id " + std::to_string(id) + " out of range");
  }
  return nodes_[id];
}

NodeId Adt::inhibited_child(NodeId inh) const {
  const Node& n = node(inh);
  if (n.type != GateType::Inhibit) {
    throw ModelError("Adt: " + describe(n, inh) + " is not an INH gate");
  }
  return n.children[0];
}

NodeId Adt::trigger_child(NodeId inh) const {
  const Node& n = node(inh);
  if (n.type != GateType::Inhibit) {
    throw ModelError("Adt: " + describe(n, inh) + " is not an INH gate");
  }
  return n.children[1];
}

std::optional<NodeId> Adt::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

NodeId Adt::at(std::string_view name) const {
  auto id = find(name);
  if (!id) {
    throw ModelError("Adt: no node named '" + std::string(name) + "'");
  }
  return *id;
}

const std::vector<NodeId>& Adt::parents(NodeId id) const {
  check_frozen();
  if (id >= parents_.size()) {
    throw ModelError("Adt: node id " + std::to_string(id) + " out of range");
  }
  return parents_[id];
}

const std::vector<NodeId>& Adt::topological_order() const {
  check_frozen();
  return topo_;
}

const std::vector<NodeId>& Adt::attack_steps() const {
  check_frozen();
  return attack_steps_;
}

const std::vector<NodeId>& Adt::defense_steps() const {
  check_frozen();
  return defense_steps_;
}

std::size_t Adt::attack_index(NodeId id) const {
  check_frozen();
  auto it = attack_index_.find(id);
  if (it == attack_index_.end()) {
    throw ModelError("Adt: " + describe(node(id), id) +
                     " is not a basic attack step");
  }
  return it->second;
}

std::size_t Adt::defense_index(NodeId id) const {
  check_frozen();
  auto it = defense_index_.find(id);
  if (it == defense_index_.end()) {
    throw ModelError("Adt: " + describe(node(id), id) +
                     " is not a basic defense step");
  }
  return it->second;
}

bool Adt::is_tree() const {
  check_frozen();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (id == root_) continue;
    if (parents_[id].size() != 1) return false;
  }
  return true;
}

AdtStats Adt::stats() const {
  check_frozen();
  AdtStats s;
  s.nodes = nodes_.size();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    switch (n.type) {
      case GateType::BasicStep:
        if (n.agent == Agent::Attacker) {
          ++s.attack_steps;
        } else {
          ++s.defense_steps;
        }
        break;
      case GateType::And:
        ++s.and_gates;
        break;
      case GateType::Or:
        ++s.or_gates;
        break;
      case GateType::Inhibit:
        ++s.inh_gates;
        break;
    }
    if (id != root_ && parents_[id].size() > 1) ++s.shared_nodes;
  }
  s.tree_shaped = (s.shared_nodes == 0);
  return s;
}

std::string Adt::to_text() const {
  check_frozen();
  std::ostringstream out;
  std::unordered_set<NodeId> expanded;

  auto recurse = [&](auto&& self, NodeId id, int depth) -> void {
    const Node& n = nodes_[id];
    out << std::string(static_cast<std::size_t>(depth) * 2, ' ');
    out << n.name << " [" << to_string(n.type) << ", " << to_string(n.agent)
        << "]";
    if (n.type == GateType::Inhibit) out << " (inhibited | trigger)";
    if (!n.children.empty() && expanded.contains(id)) {
      out << " -> see above\n";
      return;
    }
    expanded.insert(id);
    out << '\n';
    for (NodeId c : n.children) self(self, c, depth + 1);
  };
  recurse(recurse, root_, 0);
  return out.str();
}

}  // namespace adtp
