/// \file adtool_xml.hpp
/// \brief Importer for ADTool tree XML (interoperability).
///
/// ADTool (Kordy et al.) is the standard open-source editor for
/// attack-defense trees; the paper's novelty statement is precisely that
/// ADTool-style tooling has no dual-attribute analysis. This importer
/// reads the subset of ADTool's XML export that describes the tree:
///
///   <adtree>
///     <node refinement="disjunctive|conjunctive">
///       <label>...</label>
///       <parameter domainId="..." category="basic">10</parameter>
///       <node ...>...</node>                      <!-- same-role child -->
///       <node switchRole="yes" ...>...</node>     <!-- countermeasure -->
///     </node>
///   </adtree>
///
/// Mapping to the paper's formalism:
///  - a node's same-role children refine it (conjunctive -> AND,
///    disjunctive -> OR); childless nodes are basic steps;
///  - a switchRole child belongs to the opposite agent and inhibits its
///    parent: the parent becomes INH(refinement | counter). Multiple
///    countermeasures are OR-ed (any one of them blocks);
///  - ADTool's *repeated labels* convention (equal basic-step labels
///    denote the same action) maps to shared DAG nodes, i.e. the paper's
///    set semantics - analyze with bdd_bu_front(), or unfold_to_tree()
///    for tree semantics;
///  - <parameter category="basic"> values become the attribution. When
///    several domainIds are present, pass the one to import.
///
/// The root node's role is attacker ("proponent") as in ADTool.

#pragma once

#include <string>

#include "adt/adt.hpp"
#include "core/attribution.hpp"

namespace adtp {

struct AdtoolImport {
  Adt adt;
  Attribution attribution;

  /// domainIds encountered in <parameter> elements, in document order.
  std::vector<std::string> domain_ids;
};

/// Parses ADTool XML text. \p domain_id selects which parameter domain
/// populates the attribution (empty = the first one encountered; the
/// attribution is left partially/fully empty when the file carries no
/// parameters - callers supply values themselves then).
/// Throws ParseError on malformed XML and ModelError on structural
/// violations.
[[nodiscard]] AdtoolImport import_adtool_xml(const std::string& xml,
                                             const std::string& domain_id = "");

/// Reads and imports an ADTool .xml file.
[[nodiscard]] AdtoolImport load_adtool_file(const std::string& path,
                                            const std::string& domain_id = "");

/// Serializes \p adt back to ADTool tree XML (the inverse of the importer
/// over ADTool's representable class):
///  - AND/OR gates become conjunctive/disjunctive refinements; basic
///    steps become childless nodes; node names become labels;
///  - INH(b | t) renders as b's element with t appended as a
///    switchRole="yes" countermeasure child. A nested INH *base* (which
///    the importer never produces but generated models can contain) is
///    wrapped in a singleton disjunctive refinement so it stays
///    representable - the wrapper is semantically neutral and the output
///    is a fixpoint of export(import(.)) from the first round trip on;
///  - shared basic steps serialize as repeated labels (ADTool's
///    convention, re-shared on import); shared *gates* are emitted once
///    per occurrence, i.e. the re-import sees the unfolded tree;
///  - attribution values (if any) are emitted as
///    <parameter domainId="..." category="basic"> on every basic-step
///    occurrence that has one.
///
/// Requires an attacker root (ADTool's proponent); throws ModelError
/// otherwise. \p adt must be frozen.
[[nodiscard]] std::string export_adtool_xml(
    const Adt& adt, const Attribution& attribution = {},
    const std::string& domain_id = "adtp");

/// Writes export_adtool_xml() to \p path; throws Error on I/O failure.
void save_adtool_file(const Adt& adt, const Attribution& attribution,
                      const std::string& path,
                      const std::string& domain_id = "adtp");

}  // namespace adtp
