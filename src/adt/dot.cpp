#include "adt/dot.hpp"

#include <sstream>

#include "util/table.hpp"

namespace adtp {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

std::string render(const Adt& adt, const AugmentedAdt* aadt) {
  std::ostringstream out;
  out << "digraph adt {\n";
  out << "  rankdir=TB;\n";
  out << "  node [fontname=\"Helvetica\"];\n";

  for (NodeId v = 0; v < adt.size(); ++v) {
    const Node& n = adt.node(v);
    std::string label = escape(n.name);
    if (n.type != GateType::BasicStep) {
      label += std::string("\\n") + to_string(n.type);
    } else if (aadt != nullptr) {
      label += "\\n" + format_value(aadt->value_of(v));
    }
    const bool attacker = n.agent == Agent::Attacker;
    out << "  n" << v << " [label=\"" << label << "\", shape="
        << (n.type == GateType::BasicStep ? (attacker ? "box" : "ellipse")
                                          : (attacker ? "box" : "ellipse"))
        << ", style=filled, fillcolor=\""
        << (attacker ? "#f4cccc" : "#d9ead3") << "\"];\n";
  }

  for (NodeId v = 0; v < adt.size(); ++v) {
    const Node& n = adt.node(v);
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      out << "  n" << v << " -> n" << n.children[i];
      if (n.type == GateType::Inhibit && i == 1) {
        // The paper marks the edge to the inhibitor with a small circle.
        out << " [arrowhead=odot, style=dashed]";
      }
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace

std::string to_dot(const Adt& adt) {
  adt.require_frozen();
  return render(adt, nullptr);
}

std::string to_dot(const AugmentedAdt& aadt) {
  return render(aadt.adt(), &aadt);
}

}  // namespace adtp
