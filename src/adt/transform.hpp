/// \file transform.hpp
/// \brief Structural transformations of ADTs.
///
/// - unfold_to_tree: duplicates shared subtrees so a DAG becomes a tree
///   (the paper's Section VI-A manual transformation of the money-theft
///   model: "we assume that Phishing needs to be performed twice"). Note
///   this *changes the semantics*: duplicated basic steps must be paid
///   once per copy, which is the "tree semantics" of Kordy & Widel [5],
///   as opposed to the set semantics computed on the original DAG.
/// - extract_subgraph: the sub-ADT spanned by one node, with names (and
///   hence attributions) preserved; used by the modular hybrid analyzer.

#pragma once

#include <string>
#include <unordered_map>

#include "adt/adt.hpp"
#include "core/attribution.hpp"

namespace adtp {

/// Result of unfold_to_tree(): the tree plus the mapping from each cloned
/// leaf name to the original leaf name (identity for first occurrences).
struct UnfoldResult {
  Adt tree;
  std::unordered_map<std::string, std::string> leaf_origin;
};

/// Duplicates every shared subtree of \p adt, yielding a tree with
/// identical tree semantics. Clones are named "<name>@2", "<name>@3", ...
/// The result is frozen.
[[nodiscard]] UnfoldResult unfold_to_tree(const Adt& adt);

/// Unfolds an augmented ADT; cloned leaves inherit the original leaf's
/// attribute value, and the domains carry over.
[[nodiscard]] AugmentedAdt unfold_to_tree(const AugmentedAdt& aadt);

/// The sub-ADT rooted at \p v: all descendants, same names, frozen, with
/// \p v as root.
[[nodiscard]] Adt extract_subgraph(const Adt& adt, NodeId v);

/// The augmented sub-ADT rooted at \p v (attribution restricted to the
/// leaves below \p v, domains carried over).
[[nodiscard]] AugmentedAdt extract_subgraph(const AugmentedAdt& aadt,
                                            NodeId v);

}  // namespace adtp
