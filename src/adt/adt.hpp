/// \file adt.hpp
/// \brief The attack-defense tree model (Definition 1 of the paper).
///
/// An Adt is a rooted DAG of Nodes. Construction is incremental and
/// bottom-up: children must exist before their parents, which guarantees
/// acyclicity by construction. After building, callers must invoke freeze(),
/// which validates the Definition 1 constraints and computes derived data
/// (parents, topological order, leaf indices); structural queries on an
/// unfrozen Adt throw ModelError.
///
/// Terminology used throughout the library:
///  - BAS / attack steps: leaves owned by the attacker, indexed
///    0..num_attacks()-1 in ascending NodeId order; an attack vector
///    (BitVec) is indexed by these positions.
///  - BDS / defense steps: leaves owned by the defender, analogous.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "adt/node.hpp"
#include "util/error.hpp"

namespace adtp {

/// Aggregate counts used by reports and generators.
struct AdtStats {
  std::size_t nodes = 0;
  std::size_t attack_steps = 0;   ///< |A|
  std::size_t defense_steps = 0;  ///< |D|
  std::size_t and_gates = 0;
  std::size_t or_gates = 0;
  std::size_t inh_gates = 0;
  std::size_t shared_nodes = 0;  ///< nodes with more than one parent
  bool tree_shaped = true;       ///< no shared nodes
};

/// An attack-defense tree (Definition 1): rooted DAG, gate and agent
/// labels, and the INH trigger designation (encoded by child order).
class Adt {
 public:
  Adt() = default;

  // ---- construction -------------------------------------------------

  /// Adds a basic step (leaf) owned by \p agent. Names must be unique and
  /// non-empty; they are the keys used by attributions and the text format.
  NodeId add_basic(std::string name, Agent agent);

  /// Adds an AND/OR gate owned by \p agent over existing \p children.
  /// \p type must be GateType::And or GateType::Or.
  NodeId add_gate(std::string name, GateType type, Agent agent,
                  std::vector<NodeId> children);

  /// Adds an INH gate owned by the same agent as \p inhibited, with
  /// \p trigger of the opposite agent.
  NodeId add_inhibit(std::string name, NodeId inhibited, NodeId trigger);

  /// Declares the root R_T. Defaults to the last added node if never set.
  void set_root(NodeId root);

  /// Validates all Definition 1 constraints and computes derived data.
  /// Throws ModelError on violation. Idempotent; implied by const queries.
  void freeze();

  /// True once freeze() has run (and no mutation happened since).
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// Throws ModelError unless the model is frozen; for functions taking a
  /// const Adt& that need the derived data to exist.
  void require_frozen() const { check_frozen(); }

  // ---- basic queries (freeze() implied) ------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] NodeId root() const;
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }

  [[nodiscard]] GateType type(NodeId id) const { return node(id).type; }
  [[nodiscard]] Agent agent(NodeId id) const { return node(id).agent; }
  [[nodiscard]] const std::string& name(NodeId id) const {
    return node(id).name;
  }
  [[nodiscard]] const std::vector<NodeId>& children(NodeId id) const {
    return node(id).children;
  }

  /// INH accessors (Definition 1's theta and theta-bar).
  [[nodiscard]] NodeId inhibited_child(NodeId inh) const;
  [[nodiscard]] NodeId trigger_child(NodeId inh) const;

  /// Looks up a node by name; returns std::nullopt if absent.
  [[nodiscard]] std::optional<NodeId> find(std::string_view name) const;

  /// Looks up a node by name; throws ModelError if absent.
  [[nodiscard]] NodeId at(std::string_view name) const;

  // ---- derived structure (computed by freeze()) -----------------------

  /// Parents of each node (nodes listing it as a child, each counted once
  /// per edge; an INH with the same node as both children is invalid).
  [[nodiscard]] const std::vector<NodeId>& parents(NodeId id) const;

  /// All node ids in a topological order (children before parents).
  [[nodiscard]] const std::vector<NodeId>& topological_order() const;

  /// Basic attack steps A (ascending NodeId), and their dense indices.
  [[nodiscard]] const std::vector<NodeId>& attack_steps() const;
  /// Basic defense steps D (ascending NodeId), and their dense indices.
  [[nodiscard]] const std::vector<NodeId>& defense_steps() const;

  [[nodiscard]] std::size_t num_attacks() const {
    return attack_steps().size();
  }
  [[nodiscard]] std::size_t num_defenses() const {
    return defense_steps().size();
  }

  /// Dense index of a BAS within attack_steps(); throws if not a BAS.
  [[nodiscard]] std::size_t attack_index(NodeId id) const;
  /// Dense index of a BDS within defense_steps(); throws if not a BDS.
  [[nodiscard]] std::size_t defense_index(NodeId id) const;

  /// True iff every non-root node has exactly one parent (Section IV's
  /// "tree-structured" ADTs, for which the Bottom-Up algorithm is sound).
  [[nodiscard]] bool is_tree() const;

  [[nodiscard]] AdtStats stats() const;

  /// Human-oriented multi-line rendering (indented tree; shared nodes are
  /// expanded once and referenced by name afterwards).
  [[nodiscard]] std::string to_text() const;

 private:
  void mutate_guard();
  void check_frozen() const;
  NodeId add_node(Node node);
  void validate() const;
  void compute_derived();

  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeId> by_name_;
  NodeId root_ = kNoNode;
  bool root_explicit_ = false;
  bool frozen_ = false;

  // Derived (valid while frozen_).
  std::vector<std::vector<NodeId>> parents_;
  std::vector<NodeId> topo_;
  std::vector<NodeId> attack_steps_;
  std::vector<NodeId> defense_steps_;
  std::unordered_map<NodeId, std::size_t> attack_index_;
  std::unordered_map<NodeId, std::size_t> defense_index_;
};

}  // namespace adtp
