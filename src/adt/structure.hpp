/// \file structure.hpp
/// \brief Events and the structure function f_T (Definitions 2 and 3).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adt/adt.hpp"
#include "util/bitvec.hpp"

namespace adtp {

/// An event (Definition 2): a defense vector delta over the BDS positions
/// and an attack vector alpha over the BAS positions of one Adt.
struct Event {
  BitVec defense;
  BitVec attack;

  bool operator==(const Event&) const = default;

  /// Renders as "(delta, alpha)" binary strings, e.g. "(10, 011)".
  [[nodiscard]] std::string to_string() const {
    return "(" + defense.to_string() + ", " + attack.to_string() + ")";
  }
};

/// Evaluates the structure function f_T(delta, alpha, v) for every node of
/// \p adt in one topological pass and returns the per-node values.
///
/// \p defense and \p attack must have sizes adt.num_defenses() and
/// adt.num_attacks() respectively.
[[nodiscard]] std::vector<char> evaluate_all(const Adt& adt,
                                             const BitVec& defense,
                                             const BitVec& attack);

/// Evaluates f_T(delta, alpha, v) for a single node.
[[nodiscard]] bool evaluate(const Adt& adt, const BitVec& defense,
                            const BitVec& attack, NodeId v);

/// Evaluates the structure function at the root.
[[nodiscard]] bool evaluate_root(const Adt& adt, const BitVec& defense,
                                 const BitVec& attack);

/// True iff the event achieves the *attacker's* goal at the root
/// (Definition 7): f_T = 1 when tau(R_T) = Attacker, f_T = 0 when
/// tau(R_T) = Defender.
[[nodiscard]] bool attack_succeeds(const Adt& adt, const BitVec& defense,
                                   const BitVec& attack);

/// A reusable evaluator that avoids reallocating the per-node scratch
/// buffer; used by the Naive algorithm's inner loop. Holds the Adt by
/// reference: it must outlive the evaluator (temporaries are rejected).
class StructureEvaluator {
 public:
  explicit StructureEvaluator(const Adt& adt);
  explicit StructureEvaluator(Adt&&) = delete;

  /// Evaluates f_T at the root for the given vectors.
  [[nodiscard]] bool root_value(const BitVec& defense, const BitVec& attack);

  /// As root_value(), but reports the attacker-goal outcome (Def. 7).
  [[nodiscard]] bool attack_succeeds(const BitVec& defense,
                                     const BitVec& attack);

 private:
  const Adt* adt_;
  std::vector<char> values_;
};

}  // namespace adtp
