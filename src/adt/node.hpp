/// \file node.hpp
/// \brief Node-level vocabulary of the attack-defense tree model (Def. 1).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adtp {

/// Identifier of a node inside one Adt; dense, 0-based.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Gate type gamma(v) of Definition 1.
///
/// - BasicStep: a leaf; a basic attack step (BAS) when owned by the
///   attacker, a basic defense step (BDS) when owned by the defender.
/// - And / Or: classical gates; all children share the gate's agent.
/// - Inhibit: the INH gate; propagates its *inhibited* child unless its
///   *trigger* child (owned by the opposite agent) is active:
///   f(INH) = f(inhibited) AND NOT f(trigger).
enum class GateType : std::uint8_t { BasicStep, And, Or, Inhibit };

/// Agent tau(v) of Definition 1: who owns (and can activate) the node.
enum class Agent : std::uint8_t { Attacker, Defender };

/// The opposite agent.
[[nodiscard]] constexpr Agent opponent(Agent a) noexcept {
  return a == Agent::Attacker ? Agent::Defender : Agent::Attacker;
}

[[nodiscard]] constexpr const char* to_string(GateType g) noexcept {
  switch (g) {
    case GateType::BasicStep:
      return "BS";
    case GateType::And:
      return "AND";
    case GateType::Or:
      return "OR";
    case GateType::Inhibit:
      return "INH";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Agent a) noexcept {
  return a == Agent::Attacker ? "A" : "D";
}

/// One node of an ADT.
///
/// For Inhibit gates the children are stored in a fixed order:
/// children[0] is the inhibited child theta(v) (same agent as the gate) and
/// children[1] is the trigger child theta-bar(v) (opposite agent).
struct Node {
  GateType type = GateType::BasicStep;
  Agent agent = Agent::Attacker;
  std::string name;
  std::vector<NodeId> children;
};

}  // namespace adtp
