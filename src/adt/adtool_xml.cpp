#include "adt/adtool_xml.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "util/json.hpp"

namespace adtp {

namespace {

/// A minimal XML element tree - just enough for ADTool exports: elements,
/// attributes, text content, comments, declarations. No namespaces, no
/// CDATA, no DTDs.
struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;  // concatenated character data directly inside
  std::vector<std::unique_ptr<XmlElement>> children;

  [[nodiscard]] std::string attribute(const std::string& key) const {
    auto it = attributes.find(key);
    return it == attributes.end() ? std::string() : it->second;
  }
};

class XmlParser {
 public:
  explicit XmlParser(const std::string& input) : in_(input) {}

  std::unique_ptr<XmlElement> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != in_.size()) {
      fail("trailing content after the document element");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') ++line;
    }
    throw ParseError(line, "adtool xml: " + what);
  }

  [[nodiscard]] bool starts_with(const char* s) const {
    return in_.compare(pos_, std::strlen(s), s) == 0;
  }

  void skip_ws() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_])) != 0) {
      ++pos_;
    }
  }

  /// Skips whitespace, comments and processing instructions/declarations.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (starts_with("<!--")) {
        const auto end = in_.find("-->", pos_ + 4);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("<?")) {
        const auto end = in_.find("?>", pos_ + 2);
        if (end == std::string::npos) fail("unterminated declaration");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) != 0 ||
            in_[pos_] == '_' || in_[pos_] == '-' || in_[pos_] == ':' ||
            in_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a name");
    return in_.substr(start, pos_ - start);
  }

  std::string decode_entities(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string::npos) fail("unterminated entity");
      const std::string entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else {
        fail("unknown entity '&" + entity + ";'");
      }
      i = semi;
    }
    return out;
  }

  std::unique_ptr<XmlElement> parse_element() {
    if (pos_ >= in_.size() || in_[pos_] != '<') fail("expected '<'");
    ++pos_;
    auto element = std::make_unique<XmlElement>();
    element->name = parse_name();

    // Attributes.
    while (true) {
      skip_ws();
      if (pos_ >= in_.size()) fail("unterminated start tag");
      if (in_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (starts_with("/>")) {
        pos_ += 2;
        return element;
      }
      const std::string key = parse_name();
      skip_ws();
      if (pos_ >= in_.size() || in_[pos_] != '=') fail("expected '='");
      ++pos_;
      skip_ws();
      if (pos_ >= in_.size() || (in_[pos_] != '"' && in_[pos_] != '\'')) {
        fail("expected a quoted attribute value");
      }
      const char quote = in_[pos_++];
      const auto end = in_.find(quote, pos_);
      if (end == std::string::npos) fail("unterminated attribute value");
      element->attributes[key] = decode_entities(in_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }

    // Content.
    while (true) {
      if (pos_ >= in_.size()) fail("unterminated element <" + element->name +
                                   ">");
      if (starts_with("<!--")) {
        const auto end = in_.find("-->", pos_ + 4);
        if (end == std::string::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (starts_with("</")) {
        pos_ += 2;
        const std::string name = parse_name();
        if (name != element->name) {
          fail("mismatched close tag </" + name + "> for <" + element->name +
               ">");
        }
        skip_ws();
        if (pos_ >= in_.size() || in_[pos_] != '>') fail("expected '>'");
        ++pos_;
        return element;
      } else if (pos_ < in_.size() && in_[pos_] == '<') {
        element->children.push_back(parse_element());
      } else {
        const auto end = in_.find('<', pos_);
        if (end == std::string::npos) {
          fail("unterminated element <" + element->name + ">");
        }
        element->text += decode_entities(in_.substr(pos_, end - pos_));
        pos_ = end;
      }
    }
  }

  const std::string& in_;
  std::size_t pos_ = 0;
};

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

/// Converts the ADTool element tree into an Adt.
class Converter {
 public:
  Converter(AdtoolImport& out, const std::string& domain_id)
      : out_(out), requested_domain_(domain_id) {}

  NodeId convert(const XmlElement& element, Agent role) {
    if (element.name != "node") {
      throw ModelError("adtool xml: expected a <node>, found <" +
                       element.name + ">");
    }

    std::string label;
    std::vector<const XmlElement*> own;
    std::vector<const XmlElement*> counters;
    for (const auto& child : element.children) {
      if (child->name == "label") {
        label = trim(child->text);
      } else if (child->name == "node") {
        const std::string switch_role = child->attribute("switchRole");
        if (switch_role == "yes" || switch_role == "true") {
          counters.push_back(child.get());
        } else {
          own.push_back(child.get());
        }
      } else if (child->name == "parameter") {
        record_parameter(*child, label, element);
      }
      // Other elements (comments converted away, <comment> etc.): ignored.
    }
    if (label.empty()) {
      throw ModelError("adtool xml: <node> without a <label>");
    }

    NodeId base;
    if (own.empty()) {
      base = basic_step(label, role);
      // Parameters may appear after the label inside this element; they
      // were recorded with the element's label above.
    } else {
      const std::string refinement = element.attribute("refinement");
      GateType type;
      if (refinement == "conjunctive") {
        type = GateType::And;
      } else if (refinement == "disjunctive" || refinement.empty()) {
        type = GateType::Or;
      } else {
        throw ModelError("adtool xml: unknown refinement '" + refinement +
                         "'");
      }
      std::vector<NodeId> children;
      children.reserve(own.size());
      for (const XmlElement* child : own) {
        children.push_back(convert(*child, role));
      }
      base = out_.adt.add_gate(unique_name(label), type, role,
                               std::move(children));
    }

    if (counters.empty()) return base;

    // Countermeasures belong to the opposite agent; several of them are
    // OR-ed (any one blocks).
    NodeId trigger;
    if (counters.size() == 1) {
      trigger = convert(*counters[0], opponent(role));
    } else {
      std::vector<NodeId> converted;
      converted.reserve(counters.size());
      for (const XmlElement* counter : counters) {
        converted.push_back(convert(*counter, opponent(role)));
      }
      trigger = out_.adt.add_gate(unique_name(label + " counters"),
                                  GateType::Or, opponent(role),
                                  std::move(converted));
    }
    return out_.adt.add_inhibit(unique_name(label + " countered"), base,
                                trigger);
  }

 private:
  /// ADTool's repeated-labels convention: equal basic-step labels (per
  /// role) are the *same* action - one shared node.
  NodeId basic_step(const std::string& label, Agent role) {
    const auto key = std::make_pair(label, role);
    if (auto it = basic_by_label_.find(key); it != basic_by_label_.end()) {
      return it->second;
    }
    const NodeId id = out_.adt.add_basic(label, role);
    basic_by_label_.emplace(key, id);
    return id;
  }

  std::string unique_name(const std::string& base) {
    // Labels may repeat freely in ADTool (both between gates and against
    // basic steps); probe until an unused node name is found.
    std::size_t& n = name_uses_[base];
    while (true) {
      ++n;
      std::string candidate =
          n == 1 ? base : base + "@" + std::to_string(n);
      if (!out_.adt.find(candidate)) return candidate;
    }
  }

  void record_parameter(const XmlElement& parameter, const std::string& label,
                        const XmlElement& owner) {
    (void)owner;
    const std::string domain = parameter.attribute("domainId");
    if (!domain.empty() &&
        std::find(out_.domain_ids.begin(), out_.domain_ids.end(), domain) ==
            out_.domain_ids.end()) {
      out_.domain_ids.push_back(domain);
    }
    const std::string wanted = requested_domain_.empty()
                                   ? (out_.domain_ids.empty()
                                          ? std::string()
                                          : out_.domain_ids.front())
                                   : requested_domain_;
    if (!wanted.empty() && domain != wanted) return;
    if (label.empty()) {
      throw ModelError("adtool xml: <parameter> before the node's <label>");
    }
    try {
      out_.attribution.set(label, std::stod(trim(parameter.text)));
    } catch (const std::exception&) {
      throw ModelError("adtool xml: non-numeric parameter value '" +
                       trim(parameter.text) + "' on '" + label + "'");
    }
  }

  AdtoolImport& out_;
  std::string requested_domain_;
  std::map<std::pair<std::string, Agent>, NodeId> basic_by_label_;
  std::map<std::string, std::size_t> name_uses_;
};

}  // namespace

AdtoolImport import_adtool_xml(const std::string& xml,
                               const std::string& domain_id) {
  XmlParser parser(xml);
  const auto document = parser.parse_document();
  if (document->name != "adtree") {
    throw ModelError("adtool xml: document element is <" + document->name +
                     ">, expected <adtree>");
  }
  const XmlElement* root_node = nullptr;
  for (const auto& child : document->children) {
    if (child->name == "node") {
      if (root_node != nullptr) {
        throw ModelError("adtool xml: multiple root <node> elements");
      }
      root_node = child.get();
    }
  }
  if (root_node == nullptr) {
    throw ModelError("adtool xml: <adtree> has no <node>");
  }

  AdtoolImport result;
  Converter converter(result, domain_id);
  const NodeId root = converter.convert(*root_node, Agent::Attacker);
  result.adt.set_root(root);
  result.adt.freeze();
  return result;
}

AdtoolImport load_adtool_file(const std::string& path,
                              const std::string& domain_id) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return import_adtool_xml(buffer.str(), domain_id);
}

namespace {

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += ch;
    }
  }
  return out;
}

/// The recursive ADTool serializer; see export_adtool_xml() in the
/// header for the mapping.
class Exporter {
 public:
  Exporter(const Adt& adt, const Attribution& attribution,
           const std::string& domain_id)
      : adt_(adt), attribution_(attribution), domain_id_(domain_id) {}

  std::string run() {
    out_ = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<adtree>\n";
    render(adt_.root(), false, 1);
    out_ += "</adtree>\n";
    return std::move(out_);
  }

 private:
  void indent(int depth) { out_.append(static_cast<std::size_t>(depth) * 2, ' '); }

  /// Renders node \p v as one <node> element. An INH renders as its
  /// *base* element with the trigger appended as a countermeasure; a
  /// nested-INH base gets a singleton disjunctive wrapper so the result
  /// stays inside ADTool's representable class.
  void render(NodeId v, bool switch_role, int depth) {
    if (adt_.type(v) == GateType::Inhibit) {
      const NodeId base = adt_.inhibited_child(v);
      const NodeId trigger = adt_.trigger_child(v);
      if (adt_.type(base) == GateType::Inhibit) {
        indent(depth);
        out_ += "<node refinement=\"disjunctive\"";
        if (switch_role) out_ += " switchRole=\"yes\"";
        out_ += ">\n";
        emit_label(adt_.name(v), depth + 1);
        render(base, false, depth + 1);
        render(trigger, true, depth + 1);
        indent(depth);
        out_ += "</node>\n";
      } else {
        render_plain(base, switch_role, trigger, depth);
      }
      return;
    }
    render_plain(v, switch_role, kNoNode, depth);
  }

  /// Renders a non-INH node, optionally with \p counter appended as a
  /// switchRole child (the trigger of the INH wrapping it).
  void render_plain(NodeId v, bool switch_role, NodeId counter, int depth) {
    indent(depth);
    out_ += "<node";
    if (adt_.type(v) == GateType::And) {
      out_ += " refinement=\"conjunctive\"";
    } else if (adt_.type(v) == GateType::Or) {
      out_ += " refinement=\"disjunctive\"";
    }
    if (switch_role) out_ += " switchRole=\"yes\"";
    out_ += ">\n";
    emit_label(adt_.name(v), depth + 1);
    if (adt_.type(v) == GateType::BasicStep &&
        attribution_.has(adt_.name(v))) {
      indent(depth + 1);
      out_ += "<parameter domainId=\"" + xml_escape(domain_id_) +
              "\" category=\"basic\">" +
              format_double_exact(attribution_.get(adt_.name(v))) +
              "</parameter>\n";
    }
    for (NodeId c : adt_.children(v)) render(c, false, depth + 1);
    if (counter != kNoNode) render(counter, true, depth + 1);
    indent(depth);
    out_ += "</node>\n";
  }

  void emit_label(const std::string& name, int depth) {
    indent(depth);
    out_ += "<label>" + xml_escape(name) + "</label>\n";
  }

  const Adt& adt_;
  const Attribution& attribution_;
  const std::string& domain_id_;
  std::string out_;
};

}  // namespace

std::string export_adtool_xml(const Adt& adt, const Attribution& attribution,
                              const std::string& domain_id) {
  adt.require_frozen();
  if (adt.agent(adt.root()) != Agent::Attacker) {
    throw ModelError(
        "adtool xml: export requires an attacker root (ADTool's proponent); "
        "defender-rooted models are not representable");
  }
  return Exporter(adt, attribution, domain_id).run();
}

void save_adtool_file(const Adt& adt, const Attribution& attribution,
                      const std::string& path, const std::string& domain_id) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open '" + path + "' for writing");
  }
  out << export_adtool_xml(adt, attribution, domain_id);
  if (!out.good()) {
    throw Error("failed writing '" + path + "'");
  }
}

}  // namespace adtp
