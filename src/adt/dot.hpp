/// \file dot.hpp
/// \brief Graphviz DOT export of ADTs (the paper's figure style).
///
/// Attack nodes render as red boxes, defense nodes as green ellipses;
/// INH trigger edges carry the small-circle marker (odot arrowhead) used
/// in the paper's figures. Attribute values, when provided, are inscribed
/// into the leaf labels.

#pragma once

#include <optional>
#include <string>

#include "adt/adt.hpp"
#include "core/attribution.hpp"

namespace adtp {

/// Renders \p adt as a DOT digraph.
[[nodiscard]] std::string to_dot(const Adt& adt);

/// Renders an augmented ADT; leaf labels include their beta values.
[[nodiscard]] std::string to_dot(const AugmentedAdt& aadt);

}  // namespace adtp
