#include "adt/transform.hpp"

#include <functional>

namespace adtp {

UnfoldResult unfold_to_tree(const Adt& adt) {
  adt.require_frozen();

  UnfoldResult result;
  std::unordered_map<std::string, std::size_t> copies;

  auto fresh_name = [&](const std::string& base) {
    const std::size_t n = ++copies[base];
    return n == 1 ? base : base + "@" + std::to_string(n);
  };

  // Every visit clones the node; revisits through other parents produce
  // fresh copies, which is exactly the tree-semantics expansion.
  std::function<NodeId(NodeId)> clone = [&](NodeId v) -> NodeId {
    const Node& n = adt.node(v);
    const std::string name = fresh_name(n.name);
    if (name != n.name) {
      result.leaf_origin.emplace(name, n.name);
    }
    switch (n.type) {
      case GateType::BasicStep:
        return result.tree.add_basic(name, n.agent);
      case GateType::Inhibit: {
        const NodeId inhibited = clone(n.children[0]);
        const NodeId trigger = clone(n.children[1]);
        return result.tree.add_inhibit(name, inhibited, trigger);
      }
      case GateType::And:
      case GateType::Or: {
        std::vector<NodeId> children;
        children.reserve(n.children.size());
        for (NodeId c : n.children) children.push_back(clone(c));
        return result.tree.add_gate(name, n.type, n.agent,
                                    std::move(children));
      }
    }
    throw ModelError("unfold_to_tree: unknown gate type");
  };

  const NodeId root = clone(adt.root());
  result.tree.set_root(root);
  result.tree.freeze();

  // First occurrences map to themselves for lookup convenience.
  for (const Node& n : result.tree.nodes()) {
    result.leaf_origin.try_emplace(n.name, n.name);
  }
  return result;
}

AugmentedAdt unfold_to_tree(const AugmentedAdt& aadt) {
  UnfoldResult unfolded = unfold_to_tree(aadt.adt());
  Attribution attribution;
  for (const Node& n : unfolded.tree.nodes()) {
    if (n.type != GateType::BasicStep) continue;
    const std::string& origin = unfolded.leaf_origin.at(n.name);
    attribution.set(n.name, aadt.attribution().get(origin));
  }
  return AugmentedAdt(std::move(unfolded.tree), std::move(attribution),
                      aadt.defender_domain(), aadt.attacker_domain());
}

Adt extract_subgraph(const Adt& adt, NodeId v) {
  adt.require_frozen();
  if (v >= adt.size()) {
    throw ModelError("extract_subgraph: node " + std::to_string(v) +
                     " out of range");
  }

  Adt sub;
  std::unordered_map<NodeId, NodeId> remap;

  std::function<NodeId(NodeId)> visit = [&](NodeId u) -> NodeId {
    if (auto it = remap.find(u); it != remap.end()) return it->second;
    const Node& n = adt.node(u);
    NodeId fresh = kNoNode;
    switch (n.type) {
      case GateType::BasicStep:
        fresh = sub.add_basic(n.name, n.agent);
        break;
      case GateType::Inhibit: {
        const NodeId inhibited = visit(n.children[0]);
        const NodeId trigger = visit(n.children[1]);
        fresh = sub.add_inhibit(n.name, inhibited, trigger);
        break;
      }
      case GateType::And:
      case GateType::Or: {
        std::vector<NodeId> children;
        children.reserve(n.children.size());
        for (NodeId c : n.children) children.push_back(visit(c));
        fresh = sub.add_gate(n.name, n.type, n.agent, std::move(children));
        break;
      }
    }
    remap.emplace(u, fresh);
    return fresh;
  };

  const NodeId root = visit(v);
  sub.set_root(root);
  sub.freeze();
  return sub;
}

AugmentedAdt extract_subgraph(const AugmentedAdt& aadt, NodeId v) {
  Adt sub = extract_subgraph(aadt.adt(), v);
  Attribution attribution;
  for (const Node& n : sub.nodes()) {
    if (n.type != GateType::BasicStep) continue;
    attribution.set(n.name, aadt.attribution().get(n.name));
  }
  return AugmentedAdt(std::move(sub), std::move(attribution),
                      aadt.defender_domain(), aadt.attacker_domain());
}

}  // namespace adtp
