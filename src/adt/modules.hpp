/// \file modules.hpp
/// \brief Module (independent-subgraph) detection for ADT DAGs.
///
/// A node v is a *module root* when every path from the ADT root into the
/// strict descendants of v passes through v - equivalently, every strict
/// descendant's parents all lie inside v's descendant set. Modules behave
/// like black boxes: their basic steps are disjoint from the rest of the
/// model, so their Pareto front composes with siblings exactly like a
/// tree child's (the paper's future-work item on modular decomposition;
/// used by the hybrid analyzer in core/hybrid.hpp).

#pragma once

#include <vector>

#include "adt/adt.hpp"
#include "util/bitvec.hpp"

namespace adtp {

/// Per-node module information.
struct ModuleInfo {
  /// descendants[v] over NodeIds: v itself plus everything reachable.
  std::vector<BitVec> descendants;

  /// is_module[v]: v is a module root (the ADT root always is).
  std::vector<char> is_module;

  /// Number of module roots (for reporting).
  [[nodiscard]] std::size_t module_count() const {
    std::size_t n = 0;
    for (char m : is_module) n += (m != 0);
    return n;
  }
};

/// Computes descendant sets and the module predicate for every node.
/// O(N^2 / 64 + E) time and O(N^2 / 64) space; fine for the few-hundred-
/// node ADTs of the paper's experiments.
[[nodiscard]] ModuleInfo compute_modules(const Adt& adt);

}  // namespace adtp
