/// \file text_format.hpp
/// \brief A small line-oriented text format for augmented ADTs.
///
/// Grammar (one statement per line; '#' starts a comment; blank lines are
/// ignored; names are bare words of [A-Za-z0-9_@.\-] or double-quoted
/// strings; nodes must be defined before they are referenced):
///
///   domains <defender-domain> <attacker-domain>
///   <name> = attack <value>
///   <name> = defense <value>
///   <name> = AND <A|D> (<child>, <child>, ...)
///   <name> = OR  <A|D> (<child>, <child>, ...)
///   <name> = INH (<inhibited> | <trigger>)
///   root <name>
///
/// The agent of AND/OR may be omitted, in which case it is inferred from
/// the first child; INH infers its agent from the inhibited child. The
/// "domains" line is optional (default: mincost/mincost) as is "root"
/// (default: the last defined node). Example:
///
///   # Fig. 5 of the paper
///   domains mincost mincost
///   a1 = attack 5
///   d1 = defense 4
///   i1 = INH (a1 | d1)
///   a2 = attack 10
///   d2 = defense 8
///   i2 = INH (a2 | d2)
///   top = OR A (i1, i2)
///   root top

#pragma once

#include <string>

#include "adt/adt.hpp"
#include "core/attribution.hpp"

namespace adtp {

/// A parsed augmented model.
struct ParsedModel {
  Adt adt;
  Attribution attribution;
  Semiring defender_domain = Semiring::min_cost();
  Semiring attacker_domain = Semiring::min_cost();

  /// Bundles the parts into an AugmentedAdt (validates the attribution).
  [[nodiscard]] AugmentedAdt augmented() const {
    return AugmentedAdt(adt, attribution, defender_domain, attacker_domain);
  }
};

/// Parses the text format; throws ParseError with a line number on
/// malformed input and ModelError on structural violations.
[[nodiscard]] ParsedModel parse_adt_text(const std::string& text);

/// Serializes an augmented ADT to the text format (round-trips through
/// parse_adt_text for the built-in domains).
[[nodiscard]] std::string to_text_format(const AugmentedAdt& aadt);

/// Reads and parses a file; throws Error if the file cannot be read.
[[nodiscard]] ParsedModel load_adt_file(const std::string& path);

/// Serializes to a file; throws Error on I/O failure.
void save_adt_file(const AugmentedAdt& aadt, const std::string& path);

}  // namespace adtp
