/// \file json.hpp
/// \brief A minimal streaming JSON writer (no external dependencies).
///
/// Produces compact, valid JSON for the library's machine-readable
/// outputs (analysis results, experiment rows). Writer calls are
/// validated at runtime: mismatched begin/end or values in the wrong
/// position throw, so malformed output cannot be produced silently.

#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace adtp {

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document; throws unless all containers were closed and
  /// exactly one top-level value was written.
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void before_value();
  void raw(const std::string& text) { out_ += text; }
  static std::string quote(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace adtp
