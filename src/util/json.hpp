/// \file json.hpp
/// \brief A minimal streaming JSON writer and a small DOM reader (no
///        external dependencies).
///
/// The writer produces compact, valid JSON for the library's
/// machine-readable outputs (analysis results, experiment rows). Writer
/// calls are validated at runtime: mismatched begin/end or values in the
/// wrong position throw, so malformed output cannot be produced silently.
///
/// The reader (JsonValue / parse_json) covers standard JSON - objects,
/// arrays, strings with escapes, numbers, booleans, null - which is what
/// the golden-front regression tests and the bench baseline diffs
/// consume. By the writer's convention infinities are encoded as the
/// strings "inf"/"-inf"; JsonValue::as_metric() decodes them back.

#pragma once

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace adtp {

/// Renders a *finite* double so that strtod/stod recovers the exact same
/// value: integers below 1e15 print bare, everything else with %.17g.
/// Shared by the JSON writer and the ADTool XML exporter so their
/// round-trip guarantees cannot drift apart. Infinities/NaN are the
/// caller's job (each format has its own encoding for those).
[[nodiscard]] std::string format_double_exact(double v);

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// The finished document; throws unless all containers were closed and
  /// exactly one top-level value was written.
  [[nodiscard]] std::string str() const;

 private:
  enum class Frame : std::uint8_t { Object, Array };

  void before_value();
  void raw(const std::string& text) { out_ += text; }
  static std::string quote(const std::string& s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// A parsed JSON document node. Accessors validate the type at runtime
/// and throw Error on mismatch, so tests fail loudly on malformed golden
/// files instead of reading garbage.
class JsonValue {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// A metric value: a JSON number, or the writer's "inf"/"-inf" string
  /// encoding of the infinities.
  [[nodiscard]] double as_metric() const;

  /// Array access.
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] std::size_t size() const;

  /// Object access; members keep document order.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document; throws ParseError (with a line number) on
/// malformed input and Error on trailing content.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Reads and parses a .json file; throws Error if it cannot be read.
[[nodiscard]] JsonValue load_json_file(const std::string& path);

}  // namespace adtp
