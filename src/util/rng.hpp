/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// The experiments in the paper rely on randomly generated ADTs; for
/// reproducibility every randomized component of this library (generator,
/// property tests, benches) consumes an explicitly seeded generator. We use
/// xoshiro256** seeded through splitmix64, the standard recommendation of
/// the xoshiro authors; it is fast, has a 256-bit state, and - unlike
/// std::mt19937 - produces identical streams across standard libraries.

#pragma once

#include <cstdint>
#include <limits>

namespace adtp {

/// splitmix64 step; used to expand a single 64-bit seed into a full state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed0ad7ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's multiply-shift method with rejection (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    // For bound == 0 fall back to 0 rather than invoking UB; callers are
    // expected to pass bound > 0.
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;  // 2^64 % bound
      while (low < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator; convenient for splitting one
  /// experiment seed into per-instance seeds.
  Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace adtp
