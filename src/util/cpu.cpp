#include "util/cpu.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace adtp {
namespace {

#if defined(__x86_64__) || defined(_M_X64)
CpuFeatures query_features() noexcept {
  CpuFeatures f;
  f.sse2 = true;  // architectural baseline on x86-64
#if defined(__GNUC__) || defined(__clang__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}
#else
CpuFeatures query_features() noexcept { return CpuFeatures{}; }
#endif

SimdLevel clamp_to_detected(SimdLevel level) noexcept {
  const SimdLevel best = detected_simd_level();
  return static_cast<int>(level) > static_cast<int>(best) ? best : level;
}

/// Environment policy, parsed once. Returns the detected level when no
/// knob is set or the value is unrecognized ("native" is explicit for
/// that default).
SimdLevel env_level() noexcept {
  static const SimdLevel cached = [] {
    const char* force = std::getenv("ADTP_FORCE_SCALAR");
    if (force != nullptr && force[0] != '\0' && std::strcmp(force, "0") != 0) {
      return SimdLevel::Scalar;
    }
    const char* name = std::getenv("ADTP_SIMD");
    if (name == nullptr) return detected_simd_level();
    if (std::strcmp(name, "scalar") == 0) return SimdLevel::Scalar;
    if (std::strcmp(name, "sse2") == 0) {
      return clamp_to_detected(SimdLevel::Sse2);
    }
    if (std::strcmp(name, "avx2") == 0) {
      return clamp_to_detected(SimdLevel::Avx2);
    }
    return detected_simd_level();  // "native" and typos alike
  }();
  return cached;
}

/// -1 = no override, else a SimdLevel already clamped to detected.
std::atomic<int> g_override{-1};

}  // namespace

CpuFeatures detect_cpu_features() noexcept {
  static const CpuFeatures cached = query_features();
  return cached;
}

SimdLevel detected_simd_level() noexcept {
  static const SimdLevel cached = [] {
    const CpuFeatures f = detect_cpu_features();
    if (f.avx2) return SimdLevel::Avx2;
    if (f.sse2) return SimdLevel::Sse2;
    return SimdLevel::Scalar;
  }();
  return cached;
}

bool simd_level_available(SimdLevel level) noexcept {
  return static_cast<int>(level) <=
         static_cast<int>(detected_simd_level());
}

SimdLevel active_simd_level() noexcept {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return env_level();
}

void set_simd_override(SimdLevel level) noexcept {
  g_override.store(static_cast<int>(clamp_to_detected(level)),
                   std::memory_order_relaxed);
}

void clear_simd_override() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
}

const char* to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Sse2: return "sse2";
    case SimdLevel::Avx2: return "avx2";
  }
  return "scalar";
}

}  // namespace adtp
