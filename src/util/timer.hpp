/// \file timer.hpp
/// \brief Wall-clock timing helpers for the experiment harness.

#pragma once

#include <chrono>
#include <cstdint>

namespace adtp {

/// A simple monotonic stopwatch. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline used by benches to abandon exponential computations
/// (mirrors the paper's 10^4-second cap, scaled down for this harness).
class Deadline {
 public:
  /// A deadline \p budget_seconds from now; non-positive means "no limit".
  explicit Deadline(double budget_seconds)
      : enabled_(budget_seconds > 0), budget_(budget_seconds) {}

  [[nodiscard]] bool expired() const {
    return enabled_ && watch_.seconds() > budget_;
  }

  [[nodiscard]] double budget_seconds() const { return budget_; }

 private:
  bool enabled_;
  double budget_;
  Stopwatch watch_;
};

}  // namespace adtp
