#include "util/bitvec.hpp"

#include <bit>
#include <stdexcept>

#include "util/error.hpp"

namespace adtp {

namespace {

constexpr std::uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ULL;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

BitVec::BitVec(std::size_t size) : size_(size), bits_(words(), 0) {}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      v.set(i);
    } else if (bits[i] != '0') {
      throw ModelError("BitVec::from_string: invalid character '" +
                       std::string(1, bits[i]) + "'");
    }
  }
  return v;
}

void BitVec::check_index(std::size_t i) const {
  if (i >= size_) {
    throw std::out_of_range("BitVec index " + std::to_string(i) +
                            " out of range (size " + std::to_string(size_) +
                            ")");
  }
}

void BitVec::check_same_size(const BitVec& other) const {
  if (size_ != other.size_) {
    throw ModelError("BitVec size mismatch: " + std::to_string(size_) +
                     " vs " + std::to_string(other.size_));
  }
}

bool BitVec::test(std::size_t i) const {
  check_index(i);
  return (bits_[i / 64] >> (i % 64)) & 1ULL;
}

void BitVec::set(std::size_t i, bool value) {
  check_index(i);
  if (value) {
    bits_[i / 64] |= (1ULL << (i % 64));
  } else {
    bits_[i / 64] &= ~(1ULL << (i % 64));
  }
}

void BitVec::reset(std::size_t i) { set(i, false); }

void BitVec::clear() noexcept {
  for (auto& w : bits_) w = 0;
}

std::size_t BitVec::count() const noexcept {
  std::size_t n = 0;
  for (auto w : bits_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::none() const noexcept {
  for (auto w : bits_) {
    if (w != 0) return false;
  }
  return true;
}

std::vector<std::size_t> BitVec::set_bits() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t wi = 0; wi < bits_.size(); ++wi) {
    std::uint64_t w = bits_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      out.push_back(wi * 64 + static_cast<std::size_t>(b));
      w &= w - 1;
    }
  }
  return out;
}

BitVec& BitVec::operator|=(const BitVec& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= other.bits_[i];
  return *this;
}

BitVec& BitVec::operator-=(const BitVec& other) {
  check_same_size(other);
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] &= ~other.bits_[i];
  return *this;
}

bool BitVec::operator==(const BitVec& other) const noexcept {
  return size_ == other.size_ && bits_ == other.bits_;
}

bool BitVec::operator<(const BitVec& other) const noexcept {
  if (size_ != other.size_) return size_ < other.size_;
  return bits_ < other.bits_;
}

bool BitVec::is_subset_of(const BitVec& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

bool BitVec::intersects(const BitVec& other) const {
  check_same_size(other);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & other.bits_[i]) != 0) return true;
  }
  return false;
}

std::string BitVec::to_string() const {
  std::string s(size_, '0');
  for (std::size_t i = 0; i < size_; ++i) {
    if (test(i)) s[i] = '1';
  }
  return s;
}

std::uint64_t BitVec::to_uint() const {
  if (size_ > 64) {
    throw ModelError("BitVec::to_uint requires size <= 64, got " +
                     std::to_string(size_));
  }
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < size_; ++i) {
    value = (value << 1) | (test(i) ? 1ULL : 0ULL);
  }
  return value;
}

std::uint64_t BitVec::hash() const noexcept {
  std::uint64_t h = mix64(size_ + kSplitMixGamma);
  for (auto w : bits_) h = mix64(h ^ (w + kSplitMixGamma));
  return h;
}

}  // namespace adtp
