/// \file bitvec.hpp
/// \brief Fixed-size dynamic bitset used for attack/defense vectors.
///
/// The paper (Def. 2) represents the attacker's and defender's choices as
/// binary vectors over the basic attack steps (BAS) and basic defense steps
/// (BDS). ADTs in the experiments have up to a few hundred leaves, which is
/// more than the 64 bits of a plain integer mask, so we provide a small
/// word-packed bitset with the operations the analysis algorithms need.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adtp {

/// A fixed-size vector of bits, indexed from 0.
///
/// Unlike std::vector<bool> this exposes word-level access (for hashing and
/// fast union/intersection) and unlike std::bitset the size is a runtime
/// parameter. The size is fixed at construction; all binary operations
/// require equal sizes.
class BitVec {
 public:
  /// Creates an empty (size-0) vector.
  BitVec() = default;

  /// Creates a vector of \p size bits, all zero.
  explicit BitVec(std::size_t size);

  /// Creates a vector from a string of '0'/'1' characters, index 0 first
  /// (so "011" sets bits 1 and 2, matching the paper's vector notation
  /// where e.g. alpha = 011 activates a2 and a3).
  static BitVec from_string(const std::string& bits);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const;
  void set(std::size_t i, bool value = true);
  void reset(std::size_t i);
  void clear() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True if no bit is set.
  [[nodiscard]] bool none() const noexcept;

  /// Indices of all set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> set_bits() const;

  /// In-place union / intersection / difference with \p other (equal sizes).
  BitVec& operator|=(const BitVec& other);
  BitVec& operator&=(const BitVec& other);
  BitVec& operator-=(const BitVec& other);

  friend BitVec operator|(BitVec lhs, const BitVec& rhs) { return lhs |= rhs; }
  friend BitVec operator&(BitVec lhs, const BitVec& rhs) { return lhs &= rhs; }

  bool operator==(const BitVec& other) const noexcept;
  bool operator!=(const BitVec& other) const noexcept = default;

  /// Lexicographic order on (size, words); usable as a map key.
  bool operator<(const BitVec& other) const noexcept;

  /// True if this vector is a subset of \p other (equal sizes).
  [[nodiscard]] bool is_subset_of(const BitVec& other) const;

  /// True if this and \p other share at least one set bit (equal sizes).
  [[nodiscard]] bool intersects(const BitVec& other) const;

  /// Renders as a '0'/'1' string, index 0 first, e.g. "0110".
  [[nodiscard]] std::string to_string() const;

  /// Interprets the vector as a binary-encoded integer with bit 0 as the
  /// most significant digit (the paper's Fig. 4 encoding). Requires
  /// size() <= 64.
  [[nodiscard]] std::uint64_t to_uint() const;

  /// Stable 64-bit hash of contents.
  [[nodiscard]] std::uint64_t hash() const noexcept;

 private:
  [[nodiscard]] std::size_t words() const noexcept {
    return (size_ + 63) / 64;
  }
  void check_index(std::size_t i) const;
  void check_same_size(const BitVec& other) const;

  std::size_t size_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace adtp

template <>
struct std::hash<adtp::BitVec> {
  std::size_t operator()(const adtp::BitVec& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};
