#include "util/parallel.hpp"

#include <bit>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <system_error>
#include <thread>

#include "util/error.hpp"

namespace adtp {

unsigned resolve_thread_knob(unsigned requested) {
  if (requested != 0) return requested;
  static const unsigned resolved = [] {
    if (const char* env = std::getenv("ADTP_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1) {
        return static_cast<unsigned>(std::min<long>(v, 4096));
      }
    }
    return std::max(1u, std::thread::hardware_concurrency());
  }();
  return resolved;
}

namespace {

struct RunBatch;

/// A ready task as it travels through the deques: a stable handle into
/// the owning run's handle array (one pointer per deque entry, so the
/// Chase-Lev slots stay single atomic words).
struct ReadyTask {
  RunBatch* batch;
  std::uint32_t id;
};

/// Per-run state of one TaskScheduler::run() call. Lives on the driving
/// thread's stack; every worker touching it is drained before run()
/// returns (remaining only hits 0 after the last task's bookkeeping).
struct RunBatch {
  const TaskGraph* graph = nullptr;
  std::unique_ptr<std::atomic<std::uint32_t>[]> deps;  ///< remaining deps
  std::vector<std::uint32_t> out;        ///< CSR dependent lists
  std::vector<std::uint32_t> out_begin;  ///< size() + 1 offsets
  std::unique_ptr<ReadyTask[]> handles;
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> abort{false};

  std::mutex error_mutex;
  std::uint32_t error_task = UINT32_MAX;  ///< guarded by error_mutex
  std::exception_ptr error;               ///< guarded by error_mutex

  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::size_t> max_depth{0};
};

/// Chase-Lev work-stealing deque over ReadyTask pointers. The owner
/// pushes and pops at the bottom (LIFO); thieves take from the top
/// (FIFO). top/bottom use seq_cst operations rather than standalone
/// fences - the original Chase-Lev formulation - because TSan models
/// atomic operations exactly but not fence-based synchronization, and
/// the scheduler stress test runs under TSan in CI. Slot entries are
/// atomics (release-published, acquire-consumed) so the task handle's
/// fields are visible to the thief that wins the CAS.
class Deque {
 public:
  Deque() : ring_(new Ring(kInitialLog)) {}
  ~Deque() {
    delete ring_.load(std::memory_order_relaxed);
    for (Ring* r : retired_) delete r;
  }
  Deque(const Deque&) = delete;
  Deque& operator=(const Deque&) = delete;

  /// Owner only.
  void push(ReadyTask* task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = ring_.load(std::memory_order_relaxed);
    if (b - t >= ring->capacity()) ring = grow(ring, t, b);
    ring->slot(b).store(task, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. Returns the most recently pushed task, or nullptr.
  ReadyTask* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    Ring* ring = ring_.load(std::memory_order_relaxed);
    ReadyTask* task = ring->slot(b).load(std::memory_order_relaxed);
    if (t != b) return task;  // more than one entry: no race possible
    // Last entry: race the thieves for it via the top counter.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      task = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return task;
  }

  /// Thieves. Takes the oldest task, or returns nullptr when the deque
  /// is empty - or when \p filter is set and the oldest task belongs to
  /// a different run (a waiter helping only the graph it waits on skips
  /// this victim; unfiltered workers will get it).
  ReadyTask* steal(const RunBatch* filter) {
    while (true) {
      std::int64_t t = top_.load(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
      if (t >= b) return nullptr;
      Ring* ring = ring_.load(std::memory_order_acquire);
      ReadyTask* task = ring->slot(t).load(std::memory_order_acquire);
      if (filter != nullptr && task->batch != filter) return nullptr;
      if (top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                       std::memory_order_seq_cst)) {
        return task;
      }
      // Contended with another thief (who made progress): retry, so a
      // lost CAS never reports a non-empty deque as empty.
    }
  }

  /// Owner-side size estimate for the max_ready_depth counter.
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Ring {
    explicit Ring(unsigned log)
        : mask((std::int64_t{1} << log) - 1),
          slots(new std::atomic<ReadyTask*>[std::size_t{1} << log]) {}
    [[nodiscard]] std::int64_t capacity() const { return mask + 1; }
    [[nodiscard]] std::atomic<ReadyTask*>& slot(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i & mask)];
    }
    std::int64_t mask;
    std::unique_ptr<std::atomic<ReadyTask*>[]> slots;
  };

  /// Owner only. Doubles the ring; the old one is retired, not freed,
  /// because a thief may still be reading through its pointer (entries
  /// in [top, bottom) keep their values, so such reads stay valid and
  /// the CAS on top_ rejects any that went stale).
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Ring(
        static_cast<unsigned>(std::countr_zero(
            static_cast<std::uint64_t>(old->capacity()))) + 1);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    ring_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  static constexpr unsigned kInitialLog = 6;  // 64 entries
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> ring_;
  std::vector<Ring*> retired_;  ///< owner only; freed at destruction
};

}  // namespace

struct TaskScheduler::Impl {
  explicit Impl(unsigned threads) {
    const unsigned target = resolve_thread_knob(threads);
    deques = std::vector<Deque>(target);
    // num_slots must be written before the first worker spawns - workers
    // read it in find_task's steal sweep. If a spawn fails below, the
    // unspawned slots simply keep forever-empty deques the sweep skims
    // past; threads() reports the spawned count.
    num_slots = target;
    if (target > 1) {
      workers.reserve(target - 1);
      for (unsigned slot = 1; slot < target; ++slot) {
        try {
          workers.emplace_back([this, slot] { worker_loop(slot); });
        } catch (const std::system_error&) {
          break;  // keep whatever did spawn
        }
      }
    }
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
      epoch.fetch_add(1, std::memory_order_seq_cst);
    }
    wake.notify_all();
    for (std::thread& t : workers) t.join();
  }

  /// One frame of the thread-local binding stack: which slot of which
  /// scheduler the current thread is executing as. Nested run() calls -
  /// and tasks running private schedulers of their own - push frames.
  struct SlotBinding {
    Impl* impl;
    unsigned slot;
    SlotBinding* prev;
  };
  static thread_local SlotBinding* tls_top;

  [[nodiscard]] SlotBinding* find_binding() const {
    for (SlotBinding* b = tls_top; b != nullptr; b = b->prev) {
      if (b->impl == this) return b;
    }
    return nullptr;
  }

  /// Cheap per-call xorshift for the steal sweep's starting victim; the
  /// sweep order affects load balance only, never results.
  [[nodiscard]] static unsigned mix(unsigned slot) {
    thread_local std::uint32_t state = 0x9E3779B9u ^ (slot + 1);
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  }

  void push_ready(unsigned slot, ReadyTask* task) {
    Deque& d = deques[slot];
    d.push(task);
    const std::size_t depth = d.size_estimate();
    std::atomic<std::size_t>& max_depth = task->batch->max_depth;
    std::size_t seen = max_depth.load(std::memory_order_relaxed);
    while (depth > seen &&
           !max_depth.compare_exchange_weak(seen, depth,
                                            std::memory_order_relaxed)) {
    }
    epoch.fetch_add(1, std::memory_order_seq_cst);
    if (idle.load(std::memory_order_seq_cst) > 0) {
      // Lock so the notify cannot slip between a sleeper's predicate
      // check and its wait; the contended all-busy case skips this.
      const std::lock_guard<std::mutex> lock(mutex);
      wake.notify_all();
    }
  }

  /// Own deque first (LIFO depth-first), then one steal sweep. A waiter
  /// passes the batch it waits on as \p filter and both paths skip
  /// foreign tasks - a foreign own-deque bottom is pushed straight back
  /// (it belongs to an outer frame of this same thread and surfaces
  /// again when that frame resumes; thieves can still take it from the
  /// top meanwhile).
  ReadyTask* find_task(unsigned slot, const RunBatch* filter) {
    if (ReadyTask* task = deques[slot].pop()) {
      if (filter == nullptr || task->batch == filter) return task;
      deques[slot].push(task);
    }
    const unsigned start = mix(slot) % num_slots;
    for (unsigned k = 0; k < num_slots; ++k) {
      const unsigned victim = (start + k) % num_slots;
      if (victim == slot) continue;
      if (ReadyTask* task = deques[victim].steal(filter)) {
        task->batch->steals.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
    return nullptr;
  }

  void execute(ReadyTask* task, unsigned slot) {
    RunBatch& batch = *task->batch;
    const TaskGraph& graph = *batch.graph;
    if (!batch.abort.load(std::memory_order_relaxed)) {
      const TaskGraph::TaskSpec& spec = graph.tasks_[task->id];
      try {
        spec.fn(spec.ctx, slot, spec.arg);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(batch.error_mutex);
          if (!batch.error || task->id < batch.error_task) {
            batch.error = std::current_exception();
            batch.error_task = task->id;
          }
        }
        batch.abort.store(true, std::memory_order_relaxed);
      }
    }
    // Release the dependents; the graph drains even under abort so the
    // driver can safely tear the batch down.
    const std::uint32_t begin = batch.out_begin[task->id];
    const std::uint32_t end = batch.out_begin[task->id + 1];
    for (std::uint32_t e = begin; e < end; ++e) {
      const std::uint32_t dep = batch.out[e];
      if (batch.deps[dep].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_ready(slot, &batch.handles[dep]);
      }
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        epoch.fetch_add(1, std::memory_order_seq_cst);
      }
      wake.notify_all();
    }
  }

  /// Sleeps until the epoch moves past \p seen (sampled before the scan
  /// that came up empty, so a push between sample and sleep wakes us
  /// immediately) or shutdown.
  void idle_wait(std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(mutex);
    idle.fetch_add(1, std::memory_order_seq_cst);
    wake.wait(lock, [&] {
      return shutdown || epoch.load(std::memory_order_seq_cst) != seen;
    });
    idle.fetch_sub(1, std::memory_order_relaxed);
  }

  void worker_loop(unsigned slot) {
    SlotBinding scope{this, slot, nullptr};
    tls_top = &scope;
    while (true) {
      const std::uint64_t seen = epoch.load(std::memory_order_seq_cst);
      if (ReadyTask* task = find_task(slot, nullptr)) {
        execute(task, slot);
        continue;
      }
      {
        std::unique_lock<std::mutex> lock(mutex);
        if (shutdown) break;
        idle.fetch_add(1, std::memory_order_seq_cst);
        wake.wait(lock, [&] {
          return shutdown || epoch.load(std::memory_order_seq_cst) != seen;
        });
        idle.fetch_sub(1, std::memory_order_relaxed);
        if (shutdown) break;
      }
    }
    tls_top = nullptr;
  }

  /// Seeds the batch's initially-ready tasks onto \p slot's deque - in
  /// reverse id order, so the LIFO owner executes them in ascending id
  /// order like a sequential loop would - then helps until the batch
  /// drains, running only this batch's tasks (see find_task).
  void drive(RunBatch& batch, unsigned slot) {
    const std::size_t n = batch.graph->size();
    for (std::size_t i = n; i-- > 0;) {
      const auto id = static_cast<std::uint32_t>(i);
      if (batch.deps[id].load(std::memory_order_relaxed) == 0) {
        push_ready(slot, &batch.handles[id]);
      }
    }
    while (batch.remaining.load(std::memory_order_acquire) != 0) {
      const std::uint64_t seen = epoch.load(std::memory_order_seq_cst);
      if (ReadyTask* task = find_task(slot, &batch)) {
        execute(task, slot);
        continue;
      }
      if (batch.remaining.load(std::memory_order_acquire) == 0) break;
      idle_wait(seen);
    }
  }

  TaskRunStats run(const TaskGraph& graph) {
    TaskRunStats stats;
    const std::size_t n = graph.size();
    if (n == 0) return stats;
    if (n > UINT32_MAX - 1) {
      throw Error("TaskScheduler: graph exceeds 2^32 - 2 tasks");
    }

    RunBatch batch;
    batch.graph = &graph;
    batch.deps.reset(new std::atomic<std::uint32_t>[n]);
    for (std::size_t i = 0; i < n; ++i) {
      batch.deps[i].store(0, std::memory_order_relaxed);
    }
    batch.out_begin.assign(n + 1, 0);
    for (const auto& [before, after] : graph.edges_) {
      if (before >= n || after >= n) {
        throw Error("TaskScheduler: dependency edge references task " +
                    std::to_string(std::max(before, after)) + " of " +
                    std::to_string(n));
      }
      ++batch.out_begin[before + 1];
      batch.deps[after].fetch_add(1, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < n; ++i) {
      batch.out_begin[i + 1] += batch.out_begin[i];
    }
    batch.out.resize(graph.edges_.size());
    {
      std::vector<std::uint32_t> cursor(batch.out_begin.begin(),
                                        batch.out_begin.end() - 1);
      for (const auto& [before, after] : graph.edges_) {
        batch.out[cursor[before]++] = after;
      }
    }
    // Kahn pass: a cyclic graph would hang the drain loop, so reject it
    // before anything runs. O(V + E) in plain integers - noise next to
    // the graph build itself.
    {
      std::vector<std::uint32_t> scratch(n);
      std::vector<std::uint32_t> ready;
      ready.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        scratch[i] = batch.deps[i].load(std::memory_order_relaxed);
        if (scratch[i] == 0) ready.push_back(static_cast<std::uint32_t>(i));
      }
      std::size_t seen = 0;
      while (!ready.empty()) {
        const std::uint32_t id = ready.back();
        ready.pop_back();
        ++seen;
        for (std::uint32_t e = batch.out_begin[id];
             e < batch.out_begin[id + 1]; ++e) {
          if (--scratch[batch.out[e]] == 0) ready.push_back(batch.out[e]);
        }
      }
      if (seen != n) {
        throw Error("TaskScheduler: the task graph contains a dependency "
                    "cycle");
      }
    }
    batch.handles.reset(new ReadyTask[n]);
    for (std::size_t i = 0; i < n; ++i) {
      batch.handles[i] = ReadyTask{&batch, static_cast<std::uint32_t>(i)};
    }
    batch.remaining.store(n, std::memory_order_relaxed);

    if (SlotBinding* nested = find_binding()) {
      drive(batch, nested->slot);
    } else {
      // Top-level external driver: serialize on slot 0. Concurrent
      // drivers queue here instead of interleaving - a deliberate
      // constraint that keeps every runnable graph reachable from some
      // slot (see the file comment in parallel.hpp).
      const std::lock_guard<std::mutex> external(external_mutex);
      SlotBinding scope{this, 0, tls_top};
      tls_top = &scope;
      try {
        drive(batch, 0);
      } catch (...) {
        tls_top = scope.prev;
        throw;
      }
      tls_top = scope.prev;
    }

    stats.tasks = n;
    stats.steals = batch.steals.load(std::memory_order_relaxed);
    stats.max_ready_depth = batch.max_depth.load(std::memory_order_relaxed);
    if (batch.error) std::rethrow_exception(batch.error);
    return stats;
  }

  std::vector<Deque> deques;
  std::vector<std::thread> workers;
  unsigned num_slots = 1;

  std::mutex mutex;
  std::condition_variable wake;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<int> idle{0};
  bool shutdown = false;  ///< guarded by mutex

  std::mutex external_mutex;  ///< serializes bindingless drivers
};

thread_local TaskScheduler::Impl::SlotBinding* TaskScheduler::Impl::tls_top =
    nullptr;

TaskScheduler::TaskScheduler(unsigned threads)
    : impl_(std::make_unique<Impl>(threads)) {}

TaskScheduler::~TaskScheduler() = default;

unsigned TaskScheduler::threads() const noexcept {
  return static_cast<unsigned>(impl_->workers.size()) + 1;
}

TaskRunStats TaskScheduler::run(const TaskGraph& graph) {
  return impl_->run(graph);
}

TaskRunStats TaskScheduler::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(unsigned, std::size_t)>& fn) {
  TaskRunStats stats;
  if (count == 0) return stats;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (count + grain - 1) / grain;
  if (threads() == 1 || chunks == 1) {
    // Inline: report the slot the calling thread actually occupies so
    // slot-indexed caller scratch stays coherent under nesting.
    const Impl::SlotBinding* binding = impl_->find_binding();
    const unsigned slot = binding != nullptr ? binding->slot : 0;
    for (std::size_t i = 0; i < count; ++i) fn(slot, i);
    stats.tasks = chunks;
    return stats;
  }
  struct Body {
    const std::function<void(unsigned, std::size_t)>* fn;
    std::size_t count;
    std::size_t grain;
    void operator()(unsigned slot, std::uint32_t chunk) const {
      const std::size_t begin = std::size_t{chunk} * grain;
      const std::size_t end = std::min(count, begin + grain);
      for (std::size_t i = begin; i < end; ++i) (*fn)(slot, i);
    }
  } body{&fn, count, grain};
  TaskGraph graph;
  graph.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    graph.add(body, static_cast<std::uint32_t>(c));
  }
  return run(graph);
}

}  // namespace adtp
