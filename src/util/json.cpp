#include "util/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace adtp {

std::string JsonWriter::quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::before_value() {
  if (done_) {
    throw Error("JsonWriter: document already complete");
  }
  if (stack_.empty()) {
    return;  // top-level value
  }
  if (stack_.back() == Frame::Object) {
    if (!key_pending_) {
      throw Error("JsonWriter: object members need a key() first");
    }
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) raw(",");
  has_items_.back() = true;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (done_ || stack_.empty() || stack_.back() != Frame::Object) {
    throw Error("JsonWriter: key() outside an object");
  }
  if (key_pending_) {
    throw Error("JsonWriter: key() twice without a value");
  }
  if (has_items_.back()) raw(",");
  has_items_.back() = true;
  raw(quote(name));
  raw(":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || key_pending_) {
    throw Error("JsonWriter: unbalanced end_object()");
  }
  raw("}");
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw Error("JsonWriter: unbalanced end_array()");
  }
  raw("]");
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  raw(quote(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string format_double_exact(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isnan(v)) {
    raw("null");  // JSON has no NaN
  } else if (std::isinf(v)) {
    raw(v > 0 ? "\"inf\"" : "\"-inf\"");  // JSON has no infinities
  } else {
    raw(format_double_exact(v));
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw Error("JsonWriter: document incomplete");
  }
  return out_;
}

// ---- reader ---------------------------------------------------------------

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw Error("json: value is not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) throw Error("json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw Error("json: value is not a string");
  return string_;
}

double JsonValue::as_metric() const {
  if (type_ == Type::Number) return number_;
  if (type_ == Type::String) {
    if (string_ == "inf") return std::numeric_limits<double>::infinity();
    if (string_ == "-inf") return -std::numeric_limits<double>::infinity();
  }
  throw Error("json: value is not a metric (number or \"inf\"/\"-inf\")");
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) throw Error("json: value is not an array");
  return items_;
}

std::size_t JsonValue::size() const { return items().size(); }

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::Object) throw Error("json: value is not an object");
  return members_;
}

bool JsonValue::has(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return value;
  }
  throw Error("json: object has no member '" + key + "'");
}

/// Recursive-descent parser over the full document string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& input) : in_(input) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != in_.size()) fail("trailing content after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < in_.size(); ++i) {
      if (in_[i] == '\n') ++line;
    }
    throw ParseError(line, "json: " + what);
  }

  void skip_ws() {
    while (pos_ < in_.size() &&
           (in_[pos_] == ' ' || in_[pos_] == '\t' || in_[pos_] == '\n' ||
            in_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= in_.size()) fail("unexpected end of input");
    return in_[pos_];
  }

  void expect(char ch) {
    if (pos_ >= in_.size() || in_[pos_] != ch) {
      fail(std::string("expected '") + ch + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::strlen(literal);
    if (in_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  /// Containers deeper than this fail with ParseError instead of
  /// overflowing the stack (each level costs two recursion frames).
  static constexpr int kMaxDepth = 1000;

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{' || c == '[') {
      if (depth_ >= kMaxDepth) {
        fail("nesting exceeds " + std::to_string(kMaxDepth) + " levels");
      }
      ++depth_;
      JsonValue v = c == '{' ? parse_object() : parse_array();
      --depth_;
      return v;
    }
    if (c == '"') {
      JsonValue v;
      v.type_ = JsonValue::Type::String;
      v.string_ = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type_ = JsonValue::Type::Bool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type_ = JsonValue::Type::Bool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= in_.size()) fail("unterminated string");
      const char c = in_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= in_.size()) fail("unterminated escape");
      const char esc = in_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > in_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = in_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by this library's documents).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < in_.size() && in_[pos_] == '-') ++pos_;
    while (pos_ < in_.size() &&
           ((in_[pos_] >= '0' && in_[pos_] <= '9') || in_[pos_] == '.' ||
            in_[pos_] == 'e' || in_[pos_] == 'E' || in_[pos_] == '+' ||
            in_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = in_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.type_ = JsonValue::Type::Number;
    v.number_ = value;
    return v;
  }

  const std::string& in_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

}  // namespace adtp
