#include "util/json.hpp"

#include <cstdio>

namespace adtp {

std::string JsonWriter::quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::before_value() {
  if (done_) {
    throw Error("JsonWriter: document already complete");
  }
  if (stack_.empty()) {
    return;  // top-level value
  }
  if (stack_.back() == Frame::Object) {
    if (!key_pending_) {
      throw Error("JsonWriter: object members need a key() first");
    }
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) raw(",");
  has_items_.back() = true;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (done_ || stack_.empty() || stack_.back() != Frame::Object) {
    throw Error("JsonWriter: key() outside an object");
  }
  if (key_pending_) {
    throw Error("JsonWriter: key() twice without a value");
  }
  if (has_items_.back()) raw(",");
  has_items_.back() = true;
  raw(quote(name));
  raw(":");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  raw("{");
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::Object || key_pending_) {
    throw Error("JsonWriter: unbalanced end_object()");
  }
  raw("}");
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  raw("[");
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::Array) {
    throw Error("JsonWriter: unbalanced end_array()");
  }
  raw("]");
  stack_.pop_back();
  has_items_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  raw(quote(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isnan(v)) {
    raw("null");  // JSON has no NaN
  } else if (std::isinf(v)) {
    raw(v > 0 ? "\"inf\"" : "\"-inf\"");  // JSON has no infinities
  } else if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    raw(buf);
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    raw(buf);
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  raw(std::to_string(v));
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  raw(v ? "true" : "false");
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  raw("null");
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw Error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace adtp
