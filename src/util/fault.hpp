/// \file fault.hpp
/// \brief The file-system seam of the persistent store, plus fault
///        injection for crash-safety testing.
///
/// Everything in src/store/ performs file I/O exclusively through the
/// FileOps interface. Production code uses real_file_ops() (thin POSIX
/// wrappers); tests substitute a FaultFileOps that can fail any
/// operation, short-write any write, or simulate a crash at any byte
/// offset. The store's crash-safety claims are only as strong as this
/// seam is complete - if a store ever touches a file behind FileOps'
/// back, the crash matrix cannot see it, so don't.
///
/// The crash model is kill -9, not power loss: bytes handed to write()
/// before the crash point persist in order (the page cache survives the
/// process), bytes after do not, and a write straddling the crash point
/// persists exactly its prefix. FaultFileOps implements this with a
/// byte budget: writes consume it, the write that crosses it applies
/// only the remaining bytes, and every subsequent operation fails. The
/// crash-matrix test in tests/store sweeps the budget over every byte
/// offset of a workload and asserts recovery yields a prefix of the
/// committed entries. (Power-loss reordering is out of scope; the
/// store still fsyncs in publish order so the format is sound there
/// too, but no test drives that model.)
///
/// IoError carries a \p transient flag: injected EAGAIN-style failures
/// set it, and PersistentFrontCache retries transient failures with
/// bounded exponential backoff before degrading to memory-only.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace adtp {

/// A FileOps operation failed. \p transient signals "worth retrying"
/// (injected or EINTR/EAGAIN-style); everything else is permanent.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what, bool transient = false)
      : Error(what), transient_(transient) {}

  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  bool transient_;
};

/// The syscall surface of the persistent store. Operations throw
/// IoError on failure unless noted; fds are plain POSIX descriptors
/// owned by the caller (close via close_fd).
class FileOps {
 public:
  enum class OpenMode : std::uint8_t {
    Read,      ///< existing file, read-only
    Append,    ///< create if absent, writes go to the end
    Truncate,  ///< create or truncate to empty, then append
  };

  virtual ~FileOps() = default;

  [[nodiscard]] virtual bool exists(const std::string& path) = 0;
  [[nodiscard]] virtual int open_file(const std::string& path,
                                      OpenMode mode) = 0;
  /// Appends up to \p size bytes at the file's write offset; returns the
  /// number actually written (short writes are legal and the caller must
  /// resume); throws IoError on hard failure.
  virtual std::size_t write_some(int fd, const void* data,
                                 std::size_t size) = 0;
  /// Reads up to \p size bytes at absolute \p offset; returns the number
  /// read (0 at EOF); throws IoError on hard failure.
  virtual std::size_t pread_some(int fd, void* data, std::size_t size,
                                 std::uint64_t offset) = 0;
  virtual void sync_file(int fd) = 0;
  virtual void truncate_file(int fd, std::uint64_t size) = 0;
  [[nodiscard]] virtual std::uint64_t file_size(int fd) = 0;
  virtual void close_fd(int fd) noexcept = 0;
  virtual void rename_file(const std::string& from,
                           const std::string& to) = 0;
  virtual void remove_file(const std::string& path) = 0;
  /// Opens (creating if absent) \p path and takes an exclusive,
  /// non-blocking advisory lock on it - flock semantics: the lock lives
  /// with the open file description, so it is released by close_fd or
  /// by process death (kill -9 included), never by merely unlinking the
  /// path. Returns the locked fd, or -1 when another holder (process or
  /// separate open description) has it. Throws IoError on any other
  /// failure. This is the store's writer-lease primitive.
  [[nodiscard]] virtual int try_lock_file(const std::string& path) = 0;
  /// Creates \p path (single level); succeeding when it already exists.
  virtual void make_dir(const std::string& path) = 0;
  /// fsyncs the directory itself so renames/creates within it persist.
  virtual void sync_dir(const std::string& path) = 0;
  /// Names (not paths) of the regular files in \p path, sorted.
  [[nodiscard]] virtual std::vector<std::string> list_dir(
      const std::string& path) = 0;

  /// Writes all of \p size bytes, resuming short writes. Not virtual -
  /// built on write_some so injected short writes still exercise the
  /// resume loop.
  void write_all(int fd, const void* data, std::size_t size);
  /// Reads exactly \p size bytes at \p offset; returns false on EOF
  /// before \p size (caller decides whether that is corruption).
  [[nodiscard]] bool pread_all(int fd, void* data, std::size_t size,
                               std::uint64_t offset);
};

/// The process-wide POSIX implementation.
[[nodiscard]] FileOps& real_file_ops();

/// A fault-injecting FileOps decorator; see the file comment for the
/// crash model. All knobs may be re-armed between phases of a test; the
/// wrapper is thread-safe (one mutex around the counters).
class FaultFileOps final : public FileOps {
 public:
  /// Operation classes for targeted failure injection.
  enum class Op : std::uint8_t {
    Open,
    Write,
    Read,
    Sync,
    Truncate,
    Rename,
    Remove,
    Mkdir,
    SyncDir,
    List,
    Lock,
  };

  explicit FaultFileOps(FileOps& inner) : inner_(inner) {}

  // ---- knobs -------------------------------------------------------------

  /// Crash simulation: after \p budget further payload bytes have been
  /// accepted by write_some, the wrapper enters the crashed state - the
  /// crossing write applies only the remaining budget, and every later
  /// operation throws IoError("simulated crash"). kNoLimit disarms.
  static constexpr std::uint64_t kNoLimit = ~std::uint64_t{0};
  void set_write_byte_budget(std::uint64_t budget);

  /// Fails the (countdown+1)-th subsequent operation of class \p op with
  /// IoError(\p transient), \p times consecutive times (then the fault
  /// disarms itself). One armed fault per call; re-arm as needed.
  void fail_op(Op op, std::uint64_t countdown, bool transient = false,
               std::uint64_t times = 1);

  /// The (countdown+1)-th subsequent write_some accepts only half its
  /// bytes (at least one) and returns normally - the legal short write
  /// every caller must resume.
  void short_write(std::uint64_t countdown);

  /// Clears every armed fault and the crashed state (counters keep
  /// running).
  void reset_faults();

  /// When true (default), sync_file/sync_dir do not forward to the inner
  /// ops: the crash model is kill -9, where the page cache survives, so
  /// real fsyncs only cost test time. Set false to exercise real fsync
  /// failures.
  void set_skip_sync(bool skip);

  // ---- counters ----------------------------------------------------------

  [[nodiscard]] std::uint64_t bytes_written() const;
  [[nodiscard]] std::uint64_t ops_performed() const;
  [[nodiscard]] bool crashed() const;

  // ---- FileOps -----------------------------------------------------------

  [[nodiscard]] bool exists(const std::string& path) override;
  [[nodiscard]] int open_file(const std::string& path, OpenMode mode) override;
  std::size_t write_some(int fd, const void* data, std::size_t size) override;
  std::size_t pread_some(int fd, void* data, std::size_t size,
                         std::uint64_t offset) override;
  void sync_file(int fd) override;
  void truncate_file(int fd, std::uint64_t size) override;
  [[nodiscard]] std::uint64_t file_size(int fd) override;
  void close_fd(int fd) noexcept override;
  void rename_file(const std::string& from, const std::string& to) override;
  void remove_file(const std::string& path) override;
  [[nodiscard]] int try_lock_file(const std::string& path) override;
  void make_dir(const std::string& path) override;
  void sync_dir(const std::string& path) override;
  [[nodiscard]] std::vector<std::string> list_dir(
      const std::string& path) override;

 private:
  /// Advances the op counter and throws if crashed or if an armed fault
  /// fires for \p op. Called with the mutex held by the public methods.
  void check(Op op);

  FileOps& inner_;
  mutable std::mutex mutex_;
  std::uint64_t write_budget_ = kNoLimit;
  bool crashed_ = false;
  bool skip_sync_ = true;
  bool fault_armed_ = false;
  Op fault_op_ = Op::Write;
  std::uint64_t fault_countdown_ = 0;
  std::uint64_t fault_times_ = 0;
  bool fault_transient_ = false;
  bool short_armed_ = false;
  std::uint64_t short_countdown_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace adtp
