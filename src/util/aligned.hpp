/// \file aligned.hpp
/// \brief Over-aligned allocation for SIMD-friendly containers.
///
/// The SoA Pareto kernels (core/simd.hpp) stream attribute columns
/// through 32-byte vector registers. Heap storage for those columns is
/// allocated through this allocator so the column base is always
/// AVX-register aligned: the kernels themselves use unaligned loads
/// (mandatory for the shifted-by-one chain loads anyway), but an aligned
/// base keeps full blocks from straddling cache lines, and it is what
/// makes over-aligned point types safe to hold in arena vectors at all
/// (plain std::allocator + operator new only guarantees
/// __STDCPP_DEFAULT_NEW_ALIGNMENT__).

#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace adtp {

/// Minimal C++17 aligned-new allocator. Alignment is a compile-time
/// constant so rebinding preserves it and containers stay cheap to
/// instantiate.
template <typename T, std::size_t Alignment = 32>
class AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not be weaker than the type's own");

 public:
  using value_type = T;
  static constexpr std::size_t kAlignment = Alignment;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// A std::vector whose storage is 32-byte aligned (AVX register width).
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

}  // namespace adtp
