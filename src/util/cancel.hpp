/// \file cancel.hpp
/// \brief Cooperative cancellation for long-running analyses.
///
/// A CancelToken is a thread-safe flag shared between an owner (who calls
/// cancel()) and any number of workers (who poll cancelled() inside their
/// hot loops and throw CancelledError when it is set). Cancellation is
/// cooperative: nothing is interrupted preemptively; the analysis kernels
/// check the token at their resource-guard points (once per enumerated
/// defense vector, per propagated BDD node, per combined gate), so a stuck
/// item stops within one inner-loop iteration instead of running its
/// batch's clock out.
///
/// The token is intentionally one-shot per batch: analyze_batch() treats a
/// set token as "abandon everything not yet finished". reset() exists so a
/// caller can reuse one token across sequential batches; resetting while a
/// batch is in flight races with the workers' checks and is unsupported.

#pragma once

#include <atomic>
#include <string>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace adtp {

/// A cooperative cancellation flag. Copy/move are deleted: workers hold
/// pointers to one shared instance.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Safe to call from any thread, including an
  /// analyze_batch() on_item callback.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Re-arms the token for a new run. Only valid while no worker is
  /// polling it.
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The shared guard check of the analysis kernels: throws CancelledError
/// when \p cancel (nullable) is set, DeadlineError (a LimitError) when
/// \p deadline (nullable) has expired. \p who prefixes the message
/// ("naive", "bdd_bu", ...). Cancellation wins over deadline expiry when
/// both hold, so an explicitly cancelled batch reports "cancelled"
/// consistently.
inline void check_interrupt(const Deadline* deadline, const CancelToken* cancel,
                            const char* who) {
  if (cancel != nullptr && cancel->cancelled()) {
    throw CancelledError(std::string(who) + ": cancelled");
  }
  if (deadline != nullptr && deadline->expired()) {
    throw DeadlineError(std::string(who) + ": deadline expired");
  }
}

}  // namespace adtp
