#include "util/fault.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace adtp {

void FileOps::write_all(int fd, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const std::size_t n = write_some(fd, p, size);
    if (n == 0) throw IoError("write_all: wrote 0 bytes");
    p += n;
    size -= n;
  }
}

bool FileOps::pread_all(int fd, void* data, std::size_t size,
                        std::uint64_t offset) {
  auto* p = static_cast<unsigned char*>(data);
  while (size > 0) {
    const std::size_t n = pread_some(fd, p, size, offset);
    if (n == 0) return false;  // EOF short of the request
    p += n;
    size -= n;
    offset += n;
  }
  return true;
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  const int err = errno;
  const bool transient = err == EINTR || err == EAGAIN;
  throw IoError(what + ": " + std::strerror(err), transient);
}

class RealFileOps final : public FileOps {
 public:
  bool exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

  int open_file(const std::string& path, OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::Read:
        flags = O_RDONLY;
        break;
      case OpenMode::Append:
        flags = O_RDWR | O_CREAT | O_APPEND;
        break;
      case OpenMode::Truncate:
        flags = O_RDWR | O_CREAT | O_TRUNC | O_APPEND;
        break;
    }
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) throw_errno("open " + path);
    return fd;
  }

  std::size_t write_some(int fd, const void* data, std::size_t size) override {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) throw_errno("write");
    return static_cast<std::size_t>(n);
  }

  std::size_t pread_some(int fd, void* data, std::size_t size,
                         std::uint64_t offset) override {
    const ssize_t n = ::pread(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) throw_errno("pread");
    return static_cast<std::size_t>(n);
  }

  void sync_file(int fd) override {
    if (::fsync(fd) != 0) throw_errno("fsync");
  }

  void truncate_file(int fd, std::uint64_t size) override {
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      throw_errno("ftruncate");
    }
  }

  std::uint64_t file_size(int fd) override {
    struct stat st{};
    if (::fstat(fd, &st) != 0) throw_errno("fstat");
    return static_cast<std::uint64_t>(st.st_size);
  }

  void close_fd(int fd) noexcept override { ::close(fd); }

  void rename_file(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      throw_errno("rename " + from + " -> " + to);
    }
  }

  void remove_file(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) throw_errno("unlink " + path);
  }

  int try_lock_file(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) throw_errno("open lock " + path);
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      const int err = errno;
      ::close(fd);
      if (err == EWOULDBLOCK || err == EAGAIN) return -1;
      errno = err;
      throw_errno("flock " + path);
    }
    return fd;
  }

  void make_dir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      throw_errno("mkdir " + path);
    }
  }

  void sync_dir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) throw_errno("open dir " + path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) throw_errno("fsync dir " + path);
  }

  std::vector<std::string> list_dir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) throw_errno("opendir " + path);
    std::vector<std::string> names;
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

FileOps& real_file_ops() {
  static RealFileOps ops;
  return ops;
}

// ---- FaultFileOps ----------------------------------------------------------

void FaultFileOps::set_write_byte_budget(std::uint64_t budget) {
  const std::lock_guard<std::mutex> lock(mutex_);
  write_budget_ = budget;
  crashed_ = false;
}

void FaultFileOps::fail_op(Op op, std::uint64_t countdown, bool transient,
                           std::uint64_t times) {
  const std::lock_guard<std::mutex> lock(mutex_);
  fault_armed_ = true;
  fault_op_ = op;
  fault_countdown_ = countdown;
  fault_times_ = times;
  fault_transient_ = transient;
}

void FaultFileOps::short_write(std::uint64_t countdown) {
  const std::lock_guard<std::mutex> lock(mutex_);
  short_armed_ = true;
  short_countdown_ = countdown;
}

void FaultFileOps::reset_faults() {
  const std::lock_guard<std::mutex> lock(mutex_);
  write_budget_ = kNoLimit;
  crashed_ = false;
  fault_armed_ = false;
  short_armed_ = false;
}

void FaultFileOps::set_skip_sync(bool skip) {
  const std::lock_guard<std::mutex> lock(mutex_);
  skip_sync_ = skip;
}

std::uint64_t FaultFileOps::bytes_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

std::uint64_t FaultFileOps::ops_performed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

bool FaultFileOps::crashed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void FaultFileOps::check(Op op) {
  ++ops_;
  if (crashed_) throw IoError("simulated crash", false);
  if (fault_armed_ && fault_op_ == op) {
    if (fault_countdown_ > 0) {
      --fault_countdown_;
    } else if (fault_times_ > 0) {
      --fault_times_;
      if (fault_times_ == 0) fault_armed_ = false;
      throw IoError("injected fault", fault_transient_);
    }
  }
}

bool FaultFileOps::exists(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Open);
  }
  return inner_.exists(path);
}

int FaultFileOps::open_file(const std::string& path, OpenMode mode) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Open);
  }
  return inner_.open_file(path, mode);
}

std::size_t FaultFileOps::write_some(int fd, const void* data,
                                     std::size_t size) {
  std::size_t allowed = size;
  bool crash_after = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Write);
    if (short_armed_) {
      if (short_countdown_ > 0) {
        --short_countdown_;
      } else {
        short_armed_ = false;
        allowed = std::max<std::size_t>(1, size / 2);
      }
    }
    if (write_budget_ != kNoLimit) {
      if (allowed >= write_budget_) {
        // This write crosses the crash point: its prefix persists, the
        // process "dies" before acknowledging it.
        allowed = static_cast<std::size_t>(write_budget_);
        write_budget_ = 0;
        crash_after = true;
      } else {
        write_budget_ -= allowed;
      }
    }
    bytes_written_ += allowed;
  }
  if (allowed > 0) inner_.write_all(fd, data, allowed);
  if (crash_after) {
    const std::lock_guard<std::mutex> lock(mutex_);
    crashed_ = true;
    throw IoError("simulated crash", false);
  }
  return allowed;
}

std::size_t FaultFileOps::pread_some(int fd, void* data, std::size_t size,
                                     std::uint64_t offset) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Read);
  }
  return inner_.pread_some(fd, data, size, offset);
}

void FaultFileOps::sync_file(int fd) {
  bool forward;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Sync);
    forward = !skip_sync_;
  }
  if (forward) inner_.sync_file(fd);
}

void FaultFileOps::truncate_file(int fd, std::uint64_t size) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Truncate);
  }
  inner_.truncate_file(fd, size);
}

std::uint64_t FaultFileOps::file_size(int fd) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Open);
  }
  return inner_.file_size(fd);
}

void FaultFileOps::close_fd(int fd) noexcept { inner_.close_fd(fd); }

void FaultFileOps::rename_file(const std::string& from,
                               const std::string& to) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Rename);
  }
  inner_.rename_file(from, to);
}

void FaultFileOps::remove_file(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Remove);
  }
  inner_.remove_file(path);
}

int FaultFileOps::try_lock_file(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Lock);
  }
  return inner_.try_lock_file(path);
}

void FaultFileOps::make_dir(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::Mkdir);
  }
  inner_.make_dir(path);
}

void FaultFileOps::sync_dir(const std::string& path) {
  bool forward;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::SyncDir);
    forward = !skip_sync_;
  }
  if (forward) inner_.sync_dir(path);
}

std::vector<std::string> FaultFileOps::list_dir(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    check(Op::List);
  }
  return inner_.list_dir(path);
}

}  // namespace adtp
