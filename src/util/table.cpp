#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace adtp {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw ModelError("TextTable requires a non-empty header");
  }
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw ModelError("TextTable row width " + std::to_string(row.size()) +
                     " does not match header width " +
                     std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void TextTable::add_row_raw(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(format_value(c, precision));
  add_row(std::move(row));
}

std::string TextTable::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_value(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(v);
    return out.str();
  }
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  std::string s = out.str();
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

std::string format_seconds(double s) {
  if (std::isinf(s) || std::isnan(s)) return "n/a";
  const char* unit = "s";
  double v = s;
  if (s < 1e-6) {
    v = s * 1e9;
    unit = "ns";
  } else if (s < 1e-3) {
    v = s * 1e6;
    unit = "us";
  } else if (s < 1.0) {
    v = s * 1e3;
    unit = "ms";
  }
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(v < 10 ? 2 : (v < 100 ? 1 : 0));
  out << v << ' ' << unit;
  return out.str();
}

}  // namespace adtp
