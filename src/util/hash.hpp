/// \file hash.hpp
/// \brief Deterministic content hashing (FNV-1a, 64-bit).
///
/// Used by the FrontCache to key memoized analysis results on model
/// content rather than object identity: two independently built but
/// byte-identical models hash equal, so a cache shared across batches
/// still hits. FNV-1a is not cryptographic - keys built from it must be
/// compared field-by-field (the cache stores the full key, never only the
/// hash), so a collision costs a lookup miss at worst.
///
/// The hasher is streaming and order-sensitive: feed fields in a fixed
/// canonical order. Doubles are hashed by bit pattern with -0.0 folded
/// onto +0.0 (the only pair of distinct patterns the analysis treats as
/// equal values).

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace adtp {

/// A streaming FNV-1a 64-bit hasher.
class Fnv1a {
 public:
  Fnv1a() = default;

  Fnv1a& bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
    return *this;
  }

  Fnv1a& u64(std::uint64_t v) noexcept { return bytes(&v, sizeof(v)); }
  Fnv1a& u32(std::uint32_t v) noexcept { return bytes(&v, sizeof(v)); }
  Fnv1a& u8(std::uint8_t v) noexcept { return bytes(&v, sizeof(v)); }
  Fnv1a& size(std::size_t v) noexcept {
    return u64(static_cast<std::uint64_t>(v));
  }
  Fnv1a& boolean(bool v) noexcept { return u8(v ? 1 : 0); }

  /// Hashes the IEEE-754 bit pattern, folding -0.0 onto +0.0.
  Fnv1a& f64(double v) noexcept {
    return u64(std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
  }

  /// Hashes length then contents, so {"ab","c"} and {"a","bc"} differ.
  Fnv1a& str(std::string_view s) noexcept {
    size(s.size());
    return bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t state_ = kOffset;
};

/// Boost-style combiner for pre-computed 64-bit hashes.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t value) noexcept {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace adtp
