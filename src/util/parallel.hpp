/// \file parallel.hpp
/// \brief Intra-model parallelism primitives shared by the analysis
///        kernels (the naive delta sharding and the BDD level engine).
///
/// Two execution shapes are provided:
///  - run_sharded(): one-shot contiguous sharding of [0, total) across
///    freshly spawned threads. Right for kernels that split their whole
///    iteration space once (the naive 2^|D| enumeration).
///  - WorkerPool: a reusable pool with a barriered parallel_for(). Right
///    for kernels that dispatch many small rounds (the level-by-level BDD
///    propagation and construction), where spawning threads per round
///    would dominate the work.
///
/// Both report worker exceptions deterministically enough for the
/// determinism contracts of the callers: the computation's *results* are
/// written to disjoint slots and never depend on scheduling; only which
/// of several concurrently-raised exceptions wins can vary, and every such
/// exception abandons the whole analysis anyway.

#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

namespace adtp {

/// Resolves a user-facing thread-count knob: 0 means "all hardware
/// threads", anything else is taken literally.
[[nodiscard]] inline unsigned resolve_thread_knob(unsigned requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

/// Runs fn(shard, begin, end) over a contiguous partition of [0, total)
/// on \p threads workers (0 resolves to the hardware concurrency, like
/// every other thread knob here); the calling thread runs shard 0, and
/// any shard whose thread cannot be created (resource exhaustion) also
/// runs on the calling thread. All shards are joined before the first
/// exception - by shard index, so the choice is deterministic - is
/// rethrown.
template <typename Fn>
void run_sharded(unsigned threads, std::uint64_t total, Fn&& fn) {
  threads = resolve_thread_knob(threads);
  const std::uint64_t base = total / threads;
  const std::uint64_t rem = total % threads;
  auto bound = [base, rem](std::uint64_t s) {
    return base * s + std::min<std::uint64_t>(s, rem);
  };
  std::vector<std::exception_ptr> errors(threads);
  auto run_shard = [&](unsigned s) {
    try {
      fn(s, bound(s), bound(s + 1));
    } catch (...) {
      errors[s] = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  std::vector<unsigned> displaced;
  pool.reserve(threads - 1);
  for (unsigned s = 1; s < threads; ++s) {
    try {
      pool.emplace_back(run_shard, s);
    } catch (const std::system_error&) {
      displaced.push_back(s);
    }
  }
  run_shard(0);
  for (unsigned s : displaced) run_shard(s);
  for (std::thread& t : pool) t.join();
  for (unsigned s = 0; s < threads; ++s) {
    if (errors[s]) std::rethrow_exception(errors[s]);
  }
}

/// A small reusable barrier pool. Construction spawns threads - 1 workers
/// (the calling thread is always worker 0); parallel_for() hands every
/// index of [0, count) to exactly one worker and returns only after all
/// indices ran. Between calls the workers sleep on a condition variable,
/// so dispatching hundreds of rounds (one per BDD level) costs wakeups,
/// not thread spawns.
///
/// Not reentrant: at most one parallel_for() may be in flight, and only
/// the constructing thread may call it.
class WorkerPool {
 public:
  /// A pool of \p threads workers total (0 resolves to the hardware
  /// concurrency). Thread-creation failures degrade the pool silently;
  /// threads() reports what actually runs.
  explicit WorkerPool(unsigned threads) {
    const unsigned target = resolve_thread_knob(threads);
    if (target > 1) {
      workers_.reserve(target - 1);
      for (unsigned t = 1; t < target; ++t) {
        try {
          workers_.emplace_back([this, t] { worker_loop(t); });
        } catch (const std::system_error&) {
          break;  // keep whatever did spawn
        }
      }
    }
    errors_.resize(workers_.size() + 1);
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Workers that actually run tasks, calling thread included.
  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(worker, index) for every index in [0, count), claiming
  /// \p grain consecutive indices per atomic fetch. Worker ids are dense
  /// in [0, threads()); the calling thread participates as worker 0.
  /// The first exception a worker raises aborts further claims and is
  /// rethrown here after the barrier.
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(unsigned, std::size_t)>& fn) {
    if (count == 0) return;
    if (grain == 0) grain = 1;
    if (workers_.empty() || count <= grain) {
      for (std::size_t i = 0; i < count; ++i) fn(0, i);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      count_ = count;
      grain_ = grain;
      next_.store(0, std::memory_order_relaxed);
      abort_.store(false, std::memory_order_relaxed);
      pending_ = workers_.size();
      for (auto& e : errors_) e = nullptr;
      ++generation_;
    }
    wake_.notify_all();
    work(0);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      drained_.wait(lock, [this] { return pending_ == 0; });
      fn_ = nullptr;
    }
    for (const std::exception_ptr& e : errors_) {
      if (e) std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop(unsigned id) {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
      }
      work(id);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) drained_.notify_one();
      }
    }
  }

  /// Claims and runs index batches until the range drains or a worker
  /// aborts. Exceptions land in this worker's slot and raise the abort
  /// flag so sibling claims stop early.
  void work(unsigned id) {
    try {
      while (!abort_.load(std::memory_order_relaxed)) {
        const std::size_t begin =
            next_.fetch_add(grain_, std::memory_order_relaxed);
        if (begin >= count_) break;
        const std::size_t end = std::min(count_, begin + grain_);
        for (std::size_t i = begin; i < end; ++i) (*fn_)(id, i);
      }
    } catch (...) {
      errors_[id] = std::current_exception();
      abort_.store(true, std::memory_order_relaxed);
    }
  }

  std::vector<std::thread> workers_;
  std::vector<std::exception_ptr> errors_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  std::uint64_t generation_ = 0;  ///< guarded by mutex_
  std::size_t pending_ = 0;       ///< workers still in the current round
  bool shutdown_ = false;

  // Round state: written under mutex_ before the generation bump, read by
  // workers after they observe the bump (mutex-ordered).
  const std::function<void(unsigned, std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> abort_{false};
};

}  // namespace adtp
