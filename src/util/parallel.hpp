/// \file parallel.hpp
/// \brief The work-stealing task-DAG scheduler shared by every parallel
///        path in the system (batch items, naive shards, bottom-up
///        sibling folds, BDD build/propagate tasks).
///
/// One primitive replaces the old run_sharded()/barrier-WorkerPool pair:
/// a TaskScheduler executes TaskGraphs - explicit DAGs of tasks with
/// dependency edges - with per-task atomic remaining-dependency counters
/// and per-worker Chase-Lev deques. A task whose last dependency
/// completes is pushed onto the completing worker's own deque (LIFO, so
/// continuations run depth-first and hot); idle workers steal from the
/// opposite end of other workers' deques (FIFO, so thieves take the
/// oldest - widest - work). There are no level barriers anywhere: a node
/// becomes runnable the instant its children finish, which is what lets
/// sibling subtree folds, narrow BDD levels, and whole batch items share
/// one pool without idling it.
///
/// Reentrancy (the property the old WorkerPool lacked): run() may be
/// called from *inside* a running task. The nested graph's seeds go onto
/// the calling worker's own deque and the worker helps execute them -
/// restricted to tasks of the graph it is waiting on, so the stack depth
/// is bounded by the nesting depth of graphs, never by the number of
/// queued sibling tasks. This is how a batch item's intra-model phases
/// (naive shards, BDD tasks, bottom-up folds) reuse the batch scheduler
/// instead of the old donation handshake.
///
/// Determinism contract (see docs/CONTRACTS.md): the scheduler decides
/// only *where and when* tasks run, never what they compute. Every
/// caller writes task results to disjoint slots and fixes its fold/merge
/// shapes up front, so fronts AND witnesses are bit-identical for every
/// thread count; scheduler knobs therefore never enter the FrontCache
/// key. Only which of several concurrently-raised exceptions wins can
/// vary (ties break toward the smallest task id among those that threw),
/// and every such exception abandons the whole analysis anyway.
///
/// External drivers without a slot serialize on an internal mutex: a
/// scheduler may be driven from any thread, but concurrent top-level
/// run() calls from different threads queue up rather than interleave.
/// Tasks submitting nested graphs are never subject to that (they
/// already own a slot).

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace adtp {

/// Resolves a user-facing thread-count knob: 0 means "all hardware
/// threads" - overridable via the ADTP_THREADS environment variable
/// (read once; values < 1 or non-numeric are ignored) - and anything
/// else is taken literally.
[[nodiscard]] unsigned resolve_thread_knob(unsigned requested);

/// Counters of one TaskScheduler::run() call, surfaced through the
/// analysis reports so benches can see how the DAG actually executed.
struct TaskRunStats {
  std::uint64_t tasks = 0;   ///< tasks executed (graph size)
  std::uint64_t steals = 0;  ///< tasks acquired from another slot's deque
  /// Deepest any slot's ready deque got while the run was in flight -
  /// a proxy for how much parallelism the DAG exposed at once.
  std::size_t max_ready_depth = 0;

  TaskRunStats& operator+=(const TaskRunStats& o) {
    tasks += o.tasks;
    steals += o.steals;
    max_ready_depth = max_ready_depth > o.max_ready_depth
                          ? max_ready_depth
                          : o.max_ready_depth;
    return *this;
  }
};

/// An explicit task DAG: tasks are (function pointer, context, arg)
/// triples - no per-task allocation - and depends() edges order them.
/// Build the graph, then hand it to TaskScheduler::run(); the graph is
/// read-only during the run and reusable afterwards.
///
/// The templated add() overload binds a reference to a caller-owned
/// callable shared by many tasks (the per-task \p arg distinguishes
/// them); the callable must outlive the run() call, which is trivially
/// true because run() is synchronous.
class TaskGraph {
 public:
  using TaskId = std::uint32_t;
  using TaskFn = void (*)(void* ctx, unsigned slot, std::uint32_t arg);

  /// Adds a task; tasks with no depends() edges are initially ready.
  /// Ids are dense and assigned in add() order.
  TaskId add(TaskFn fn, void* ctx, std::uint32_t arg = 0) {
    tasks_.push_back(TaskSpec{fn, ctx, arg});
    return static_cast<TaskId>(tasks_.size() - 1);
  }

  /// Adds a task calling body(slot, arg) on a caller-owned callable.
  template <typename F>
  TaskId add(F& body, std::uint32_t arg = 0) {
    return add(
        [](void* ctx, unsigned slot, std::uint32_t a) {
          (*static_cast<F*>(ctx))(slot, a);
        },
        &body, arg);
  }

  /// Declares that \p task may only start after \p on completed.
  void depends(TaskId task, TaskId on) { edges_.emplace_back(on, task); }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  void reserve(std::size_t tasks, std::size_t edges = 0) {
    tasks_.reserve(tasks);
    if (edges != 0) edges_.reserve(edges);
  }
  void clear() {
    tasks_.clear();
    edges_.clear();
  }

 private:
  friend class TaskScheduler;
  struct TaskSpec {
    TaskFn fn;
    void* ctx;
    std::uint32_t arg;
  };
  std::vector<TaskSpec> tasks_;
  /// (before, after) pairs; turned into CSR dependent lists per run.
  std::vector<std::pair<TaskId, TaskId>> edges_;
};

/// The work-stealing pool. Construction spawns threads - 1 workers (the
/// driving thread always executes as one more slot); destruction joins
/// them. Slot ids are dense in [0, threads()): 0 is reserved for
/// external drivers, 1.. are the spawned workers - callers size
/// per-slot scratch (arenas, partial results) by threads() and index it
/// by the slot id their tasks receive.
class TaskScheduler {
 public:
  /// A scheduler of \p threads execution slots (0 resolves like every
  /// other thread knob). Thread-creation failures degrade the pool
  /// silently; threads() reports what actually runs.
  explicit TaskScheduler(unsigned threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Execution slots, the driving thread included.
  [[nodiscard]] unsigned threads() const noexcept;

  /// Runs every task of \p graph respecting its dependency edges and
  /// returns when all completed. Callable from any thread - including
  /// from inside a running task (the nested graph shares the workers).
  /// Throws Error on a dependency cycle (detected up front, nothing
  /// runs). If tasks throw, the graph still drains (pending tasks are
  /// skipped, not abandoned) and the exception of the smallest-id
  /// throwing task is rethrown.
  TaskRunStats run(const TaskGraph& graph);

  /// Convenience fan-out of the old parallel_for shape: runs fn(slot,
  /// index) for every index in [0, count), \p grain consecutive indices
  /// per task, as one dependency-free graph.
  TaskRunStats parallel_for(std::size_t count, std::size_t grain,
                            const std::function<void(unsigned, std::size_t)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Runs fn(shard, begin, end) over a contiguous partition of [0, total)
/// into exactly \p shards pieces. Shard results must index by the shard
/// id (stable, scheduling-independent), not the slot id. When \p pool is
/// null or single-slot and more than one shard is asked for, a temporary
/// scheduler of \p shards slots is spawned for the call - the old
/// one-shot run_sharded() shape. Exceptions rethrow by the smallest
/// shard index, like the scheduler itself.
template <typename Fn>
void run_sharded(TaskScheduler* pool, unsigned shards, std::uint64_t total,
                 Fn&& fn) {
  if (shards <= 1) {
    fn(0u, std::uint64_t{0}, total);
    return;
  }
  const std::uint64_t base = total / shards;
  const std::uint64_t rem = total % shards;
  auto bound = [base, rem](std::uint64_t s) {
    return base * s + std::min<std::uint64_t>(s, rem);
  };
  std::optional<TaskScheduler> owned;
  if (pool == nullptr || pool->threads() <= 1) {
    owned.emplace(shards);
    pool = &*owned;
  }
  auto body = [&](unsigned, std::uint32_t s) {
    fn(static_cast<unsigned>(s), bound(s), bound(std::uint64_t{s} + 1));
  };
  TaskGraph graph;
  graph.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) graph.add(body, s);
  pool->run(graph);
}

}  // namespace adtp
