/// \file table.hpp
/// \brief Console table and CSV rendering for the benchmark harness.
///
/// The benches reproduce the paper's tables and figure series as aligned
/// text tables (for humans) and CSV (for re-plotting). This tiny formatter
/// keeps that output consistent across all bench binaries.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace adtp {

/// An in-memory table: a header row plus data rows of equal width.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each cell with to_string-like rules.
  void add_row_raw(const std::vector<double>& cells, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders an aligned, pipe-separated table.
  [[nodiscard]] std::string to_text() const;

  /// Renders RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly: integers without decimals, "inf" for
/// infinity, otherwise fixed with \p precision digits, trailing zeros
/// trimmed.
[[nodiscard]] std::string format_value(double v, int precision = 3);

/// Formats a duration in seconds with engineering-friendly units
/// (e.g. "1.23 ms", "4.5 s").
[[nodiscard]] std::string format_seconds(double s);

}  // namespace adtp
