/// \file cpu.hpp
/// \brief Runtime CPU-capability detection and SIMD dispatch policy.
///
/// The Pareto kernels ship one scalar implementation (the oracle; it is
/// the pre-SIMD code, preserved verbatim) plus SSE2 and AVX2 batch
/// kernels compiled into separate translation units. Which one runs is a
/// process-global *policy level*, resolved as
///
///     active = override ?: env ?: detected
///
/// where every stage is clamped to what the hardware actually supports,
/// so requesting AVX2 on an SSE2-only machine degrades instead of
/// faulting. The scalar level is always available (including on non-x86
/// builds, where it is the only level).
///
/// Environment knobs, read once on first use:
///   ADTP_SIMD=scalar|sse2|avx2|native   pin the dispatch level
///   ADTP_FORCE_SCALAR=1                 shorthand for ADTP_SIMD=scalar
///
/// Tests and benches use set_simd_override() / ScopedSimdOverride to
/// compare levels in-process; the override beats the environment.

#pragma once

namespace adtp {

/// Dispatch levels, ordered by capability. Values are contiguous so the
/// level doubles as an index into per-level tables.
enum class SimdLevel : int {
  Scalar = 0,  ///< portable scalar loops (the test oracle)
  Sse2 = 1,    ///< 2 x double lanes (x86-64 baseline)
  Avx2 = 2,    ///< 4 x double lanes
};

/// Raw feature bits, for diagnostics (bench_micro reports these).
struct CpuFeatures {
  bool sse2 = false;
  bool avx2 = false;
  bool avx512f = false;  ///< detected but unused; see ROADMAP
};

/// Queries the hardware (cached after the first call).
[[nodiscard]] CpuFeatures detect_cpu_features() noexcept;

/// Best level the hardware supports (ignores env and overrides).
[[nodiscard]] SimdLevel detected_simd_level() noexcept;

/// True when \p level is at or below the detected level.
[[nodiscard]] bool simd_level_available(SimdLevel level) noexcept;

/// The level kernels dispatch on right now: the programmatic override if
/// set, else the ADTP_SIMD / ADTP_FORCE_SCALAR environment policy, else
/// the detected level; always clamped to the detected level.
[[nodiscard]] SimdLevel active_simd_level() noexcept;

/// Pins the dispatch level process-wide (clamped to detected) until
/// clear_simd_override(). For tests and benches; thread-safe.
void set_simd_override(SimdLevel level) noexcept;

/// Reverts to the environment/detected policy.
void clear_simd_override() noexcept;

/// "scalar", "sse2", or "avx2".
[[nodiscard]] const char* to_string(SimdLevel level) noexcept;

/// RAII form of set_simd_override() for test scopes.
class ScopedSimdOverride {
 public:
  explicit ScopedSimdOverride(SimdLevel level) { set_simd_override(level); }
  ~ScopedSimdOverride() { clear_simd_override(); }
  ScopedSimdOverride(const ScopedSimdOverride&) = delete;
  ScopedSimdOverride& operator=(const ScopedSimdOverride&) = delete;
};

}  // namespace adtp
