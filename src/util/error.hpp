/// \file error.hpp
/// \brief Error hierarchy for the adtpareto library.
///
/// All library-raised failures derive from adtp::Error so that callers can
/// catch library errors separately from standard-library failures. More
/// specific subclasses distinguish model-construction problems from resource
/// exhaustion guards (e.g. BDD node limits).

#pragma once

#include <stdexcept>
#include <string>

namespace adtp {

/// Base class of all errors thrown by the adtpareto library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A structural constraint of Definition 1 (or a builder precondition) was
/// violated while constructing or validating an attack-defense tree.
class ModelError : public Error {
 public:
  explicit ModelError(const std::string& what) : Error(what) {}
};

/// An attribution (beta_A / beta_D) is incomplete or contains invalid values.
class AttributionError : public Error {
 public:
  explicit AttributionError(const std::string& what) : Error(what) {}
};

/// A textual ADT description could not be parsed; carries a 1-based line.
class ParseError : public Error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : Error("line " + std::to_string(line) + ": " + what), line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// A configured resource guard (BDD node limit, event-enumeration limit)
/// was exceeded; the computation was abandoned, not silently truncated.
class LimitError : public Error {
 public:
  explicit LimitError(const std::string& what) : Error(what) {}
};

/// A wall-clock Deadline expired mid-computation. A LimitError (existing
/// catch sites keep working), but distinguishable where it matters - e.g.
/// analyze_batch attributes in-flight aborts to its batch deadline.
class DeadlineError : public LimitError {
 public:
  explicit DeadlineError(const std::string& what) : LimitError(what) {}
};

/// A cooperative CancelToken was observed set mid-computation; the run was
/// abandoned. Distinct from LimitError so callers can tell "you asked me
/// to stop" from "a resource guard fired".
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

}  // namespace adtp
