/// Custom attribute domains: the semiring framework is open - any
/// linearly ordered unital semiring works. This example analyzes one
/// model under three attacker domains:
///  - min cost (built-in),
///  - success probability (built-in; the defender metric stays cost),
///  - a custom "attacker reputation damage" domain where the attacker
///    prefers attacks that burn the *least* reputation, combining with
///    max (the attack is as conspicuous as its most conspicuous step).

#include <algorithm>
#include <iostream>
#include <limits>

#include "core/analyzer.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

/// Reuses the Fig. 2 "steal user data" structure with bespoke values.
AugmentedAdt annotate(const Semiring& attacker_domain,
                      const Attribution& beta) {
  return AugmentedAdt(catalog::fig2_steal_data_adt(), beta,
                      Semiring::min_cost(), attacker_domain);
}

}  // namespace

int main() {
  // Defender costs are shared by all three analyses.
  auto set_defenses = [](Attribution& beta) {
    beta.set("APUT", 15);  // anti-phishing user training
    beta.set("SU", 10);    // regular software updates
    beta.set("SKO", 25);
  };

  // --- 1. min cost -------------------------------------------------------
  {
    Attribution beta;
    set_defenses(beta);
    beta.set("BU", 90);   // blackmail is expensive
    beta.set("PA", 20);
    beta.set("ESV", 35);
    beta.set("ACV", 40);
    beta.set("DNS", 30);
    beta.set("SDK", 25);
    const auto result = analyze(annotate(Semiring::min_cost(), beta));
    std::cout << "min cost:        " << result.front.to_string()
              << "   (algorithm: " << to_string(result.used) << ")\n";
  }

  // --- 2. success probability --------------------------------------------
  {
    Attribution beta;
    set_defenses(beta);
    beta.set("BU", 0.3);
    beta.set("PA", 0.8);
    beta.set("ESV", 0.5);
    beta.set("ACV", 0.45);
    beta.set("DNS", 0.6);
    beta.set("SDK", 0.7);
    const auto result = analyze(annotate(Semiring::probability(), beta));
    std::cout << "probability:     " << result.front.to_string()
              << "   (defender cost vs attack success probability)\n";
  }

  // --- 3. custom: reputation damage ---------------------------------------
  {
    // The attacker wants the least conspicuous successful attack; a
    // combined attack is as conspicuous as its worst step (max), the
    // neutral element is 0, and "no attack possible" is +inf.
    const Semiring reputation = Semiring::custom(
        "reputation damage", /*one=*/0.0,
        /*zero=*/std::numeric_limits<double>::infinity(),
        [](double a, double b) { return std::max(a, b); },
        [](double a, double b) { return a <= b; });
    // A randomized probe of the Definition 4 axioms before trusting it.
    if (!reputation.check_axioms().all_hold()) {
      std::cerr << "custom domain violates the semiring axioms\n";
      return 1;
    }
    Attribution beta;
    set_defenses(beta);
    beta.set("BU", 9);   // blackmail: very loud
    beta.set("PA", 4);
    beta.set("ESV", 2);
    beta.set("ACV", 3);
    beta.set("DNS", 7);
    beta.set("SDK", 2);
    const auto result = analyze(annotate(reputation, beta));
    std::cout << "reputation:      " << result.front.to_string()
              << "   (defender cost vs attacker conspicuousness)\n";
  }

  std::cout << "\nEach front reads: \"if the defender spends d, the best "
               "available attack scores a in the attacker's domain\".\n";
  return 0;
}
