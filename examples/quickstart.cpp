/// Quickstart: build a small attack-defense tree, annotate it with costs
/// for both agents, and compute the defense/attack Pareto front.
///
/// The model is the paper's Fig. 5: two attacks (a1: 5, a2: 10), each
/// inhibited by its own defense (d1: 4, d2: 8), under an attacker OR.

#include <iostream>

#include "core/analyzer.hpp"
#include "core/budget.hpp"

using namespace adtp;

int main() {
  // 1. Build the tree bottom-up: children before parents.
  Adt adt;
  const NodeId a1 = adt.add_basic("a1", Agent::Attacker);
  const NodeId d1 = adt.add_basic("d1", Agent::Defender);
  const NodeId i1 = adt.add_inhibit("attack1_unblocked", a1, d1);
  const NodeId a2 = adt.add_basic("a2", Agent::Attacker);
  const NodeId d2 = adt.add_basic("d2", Agent::Defender);
  const NodeId i2 = adt.add_inhibit("attack2_unblocked", a2, d2);
  const NodeId root =
      adt.add_gate("breach", GateType::Or, Agent::Attacker, {i1, i2});
  adt.set_root(root);
  adt.freeze();

  std::cout << "model:\n" << adt.to_text() << "\n";

  // 2. Attach attribute values (beta_A for attacks, beta_D for defenses).
  Attribution beta;
  beta.set("a1", 5);
  beta.set("a2", 10);
  beta.set("d1", 4);
  beta.set("d2", 8);

  // 3. Pick the attribute domains (Table I) and bundle everything.
  const AugmentedAdt aadt(std::move(adt), std::move(beta),
                          Semiring::min_cost(), Semiring::min_cost());

  // 4. Analyze: auto-selects Bottom-Up for trees, BDDBU for DAGs.
  const AnalysisResult result = analyze(aadt);
  std::cout << "algorithm: " << to_string(result.used) << "\n";
  std::cout << "Pareto front (defense cost, attack cost): "
            << result.front.to_string() << "\n\n";

  // 5. Ask planning questions against the front.
  const Semiring cost = Semiring::min_cost();
  std::cout << "with a defense budget of 4, the cheapest successful attack "
               "costs "
            << guaranteed_attacker_value(result.front, 4, cost, cost)
            << "\n";
  std::cout << "spending " << *cheapest_defense_for(result.front, 10, cost,
                                                    cost)
            << " forces the attacker to pay at least 10\n";
  std::cout << "with unlimited budget the defender blocks everything "
               "(attack cost inf): spending 12 activates both defenses\n";
  return 0;
}
