/// A cyber-physical case study of the kind the paper's introduction
/// motivates (SCADA security, citing Tanu & Arreymbi's tank-and-pump
/// facility analysis): disrupting an industrial pump controlled over a
/// SCADA network.
///
/// The attacker can reach the controller over IT (phishing an operator or
/// exploiting the historian's VPN, countered by MFA which itself falls to
/// SIM swapping) or physically (tailgating into the pump house, countered
/// by badge readers that a cloned badge defeats). Once in, they either
/// spoof setpoints (countered by command signing) or flash malicious
/// firmware. The model is a DAG: "engineering workstation access" is
/// shared by both final steps - analyzed under set semantics with BDDBU,
/// with the tree-semantics comparison alongside.

#include <iostream>

#include "adt/transform.hpp"
#include "core/analyzer.hpp"
#include "core/budget.hpp"
#include "core/relevance.hpp"
#include "core/response.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

AugmentedAdt build_scada_model() {
  Adt adt;

  // --- IT path ----------------------------------------------------------
  const NodeId phish = adt.add_basic("phish_operator", Agent::Attacker);
  const NodeId training = adt.add_basic("security_training", Agent::Defender);
  const NodeId phish_inh = adt.add_inhibit("phish_untrained", phish, training);

  const NodeId vpn_exploit = adt.add_basic("exploit_vpn", Agent::Attacker);
  const NodeId mfa = adt.add_basic("vpn_mfa", Agent::Defender);
  const NodeId sim_swap = adt.add_basic("sim_swap", Agent::Attacker);
  const NodeId mfa_eff = adt.add_inhibit("mfa_effective", mfa, sim_swap);
  const NodeId vpn_inh = adt.add_inhibit("vpn_unprotected", vpn_exploit,
                                         mfa_eff);

  const NodeId it_access = adt.add_gate("it_access", GateType::Or,
                                        Agent::Attacker,
                                        {phish_inh, vpn_inh});

  // --- physical path ------------------------------------------------------
  const NodeId tailgate = adt.add_basic("tailgate", Agent::Attacker);
  const NodeId badge = adt.add_basic("badge_readers", Agent::Defender);
  const NodeId clone = adt.add_basic("clone_badge", Agent::Attacker);
  const NodeId badge_eff = adt.add_inhibit("badges_effective", badge, clone);
  const NodeId physical = adt.add_inhibit("physical_access", tailgate,
                                          badge_eff);

  // --- engineering workstation: shared by both attack finishes -----------
  const NodeId entry = adt.add_gate("plant_entry", GateType::Or,
                                    Agent::Attacker, {it_access, physical});
  const NodeId creds = adt.add_basic("harvest_ews_creds", Agent::Attacker);
  const NodeId ews = adt.add_gate("ews_access", GateType::And,
                                  Agent::Attacker, {entry, creds});

  // --- final steps ---------------------------------------------------------
  const NodeId spoof = adt.add_basic("spoof_setpoints", Agent::Attacker);
  const NodeId signing = adt.add_basic("command_signing", Agent::Defender);
  const NodeId spoof_inh = adt.add_inhibit("spoof_unsigned", spoof, signing);
  const NodeId spoof_path = adt.add_gate("setpoint_attack", GateType::And,
                                         Agent::Attacker, {ews, spoof_inh});

  const NodeId firmware = adt.add_basic("flash_firmware", Agent::Attacker);
  const NodeId fw_path = adt.add_gate("firmware_attack", GateType::And,
                                      Agent::Attacker, {ews, firmware});

  const NodeId root = adt.add_gate("disrupt_pump", GateType::Or,
                                   Agent::Attacker, {spoof_path, fw_path});
  adt.set_root(root);
  adt.freeze();

  Attribution beta;  // attacker: effort; defender: budget (k$)
  beta.set("phish_operator", 25);
  beta.set("exploit_vpn", 45);
  beta.set("sim_swap", 70);
  beta.set("tailgate", 30);
  beta.set("clone_badge", 55);
  beta.set("harvest_ews_creds", 15);
  beta.set("spoof_setpoints", 20);
  beta.set("flash_firmware", 85);
  beta.set("security_training", 12);
  beta.set("vpn_mfa", 18);
  beta.set("badge_readers", 35);
  beta.set("command_signing", 25);
  return AugmentedAdt(std::move(adt), std::move(beta), Semiring::min_cost(),
                      Semiring::min_cost());
}

}  // namespace

int main() {
  const AugmentedAdt scada = build_scada_model();
  std::cout << "SCADA pump-disruption ADT (" << scada.adt().size()
            << " nodes, DAG: the engineering workstation is shared):\n\n"
            << scada.adt().to_text() << "\n";

  const AnalysisResult result = analyze(scada);
  std::cout << "Pareto front (defender k$, attacker effort): "
            << result.front.to_string() << "  [" << to_string(result.used)
            << "]\n\n";

  // Budget narrative.
  const Semiring cost = Semiring::min_cost();
  TextTable sweep({"defender budget", "attacker must spend", "note"});
  for (double budget : {0.0, 12.0, 30.0, 47.0, 65.0, 90.0}) {
    const double g =
        guaranteed_attacker_value(result.front, budget, cost, cost);
    sweep.add_row({format_value(budget), format_value(g), ""});
  }
  std::cout << sweep.to_text() << "\n";

  // Which countermeasures actually matter?
  const RelevanceReport relevance = analyze_defense_relevance(scada);
  std::cout << "defense relevance:\n";
  for (const auto& entry : relevance.defenses) {
    std::cout << "  " << scada.adt().name(entry.defense) << ": "
              << (entry.relevant ? "relevant" : "IRRELEVANT (wasted budget)")
              << "\n";
  }

  // Minimal attack sets against the full defense deployment.
  BitVec all_defenses(scada.adt().num_defenses());
  for (std::size_t i = 0; i < all_defenses.size(); ++i) all_defenses.set(i);
  const Responder responder(scada);
  const auto cut_sets = responder.minimal_attacks(all_defenses);
  std::cout << "\nminimal attacks against the full deployment ("
            << cut_sets.size() << "):\n";
  for (const BitVec& s : cut_sets) {
    std::cout << "  value " << format_value(scada.attack_vector_value(s))
              << ": {";
    bool first = true;
    for (std::size_t i : s.set_bits()) {
      std::cout << (first ? "" : ", ")
                << scada.adt().name(scada.adt().attack_steps()[i]);
      first = false;
    }
    std::cout << "}\n";
  }

  // Tree-semantics comparison (the shared EWS paid once per use).
  const AugmentedAdt tree = unfold_to_tree(scada);
  std::cout << "\ntree-semantics front (duplicated workstation): "
            << analyze(tree).front.to_string() << "\n";
  return 0;
}
