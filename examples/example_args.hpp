/// \file example_args.hpp
/// \brief Tiny "--name value" argument helpers shared by the fleet-style
///        examples (random_fleet, serving_loop). adt_cli has richer
///        subcommand parsing of its own; the benches use
///        bench/bench_common.hpp.

#pragma once

#include <cstddef>
#include <string>

namespace adtp::examples {

inline std::size_t flag(int argc, char** argv, const std::string& name,
                        std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) {
      return static_cast<std::size_t>(std::stoull(argv[i + 1]));
    }
  }
  return fallback;
}

inline double flag_d(int argc, char** argv, const std::string& name,
                     double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) return std::stod(argv[i + 1]);
  }
  return fallback;
}

}  // namespace adtp::examples
