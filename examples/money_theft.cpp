/// The paper's Section VI-A case study, end to end: the money-theft ADT
/// of Kordy & Widel, analyzed under both tree semantics (Bottom-Up on the
/// unfolded tree) and set semantics (BDDBU on the DAG), with optimal
/// strategies and the defender-budget narrative. Optionally writes
/// Graphviz DOT files for the model and its ROBDD.
///
/// Usage: money_theft [--dot-dir DIR]

#include <fstream>
#include <iostream>
#include <string>

#include "adt/dot.hpp"
#include "adt/transform.hpp"
#include "bdd/build.hpp"
#include "bdd/dot.hpp"
#include "core/analyzer.hpp"
#include "core/budget.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

void describe_point(const AugmentedAdt& aadt, const WitnessPoint& p) {
  const Adt& adt = aadt.adt();
  std::cout << "  defender spends " << format_value(p.def) << " on {";
  bool first = true;
  for (std::size_t i : p.defense.set_bits()) {
    std::cout << (first ? "" : ", ") << adt.name(adt.defense_steps()[i]);
    first = false;
  }
  if (aadt.attacker_domain().equivalent(p.att,
                                        aadt.attacker_domain().zero())) {
    std::cout << "}; no successful attack exists\n";
    return;
  }
  std::cout << (first ? "nothing" : "") << "}; best attack costs "
            << format_value(p.att) << ": {";
  first = true;
  for (std::size_t i : p.attack.set_bits()) {
    std::cout << (first ? "" : ", ") << adt.name(adt.attack_steps()[i]);
    first = false;
  }
  std::cout << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const AugmentedAdt dag = catalog::money_theft_dag();
  const AugmentedAdt tree = unfold_to_tree(dag);

  std::cout << "Money theft ADT (" << dag.adt().size()
            << " nodes; Phishing is shared between user name and "
               "password):\n\n"
            << dag.adt().to_text() << "\n";

  // --- set semantics: analyze the DAG directly with BDDBU --------------
  std::cout << "=== set semantics (BDDBU on the DAG) ===\n";
  const WitnessFront dag_front = bdd_bu_front_witness(dag);
  for (const auto& p : dag_front.points()) describe_point(dag, p);

  // --- tree semantics: the paper's manual unfolding ---------------------
  std::cout << "\n=== tree semantics (Bottom-Up on the unfolded tree; "
               "Phishing paid once per copy) ===\n";
  const WitnessFront tree_front = bottom_up_front_witness(tree);
  for (const auto& p : tree_front.points()) describe_point(tree, p);

  // --- the paper's narrative -------------------------------------------
  std::cout << "\nNarrative (tree semantics): with no budget the attacker "
               "steals via the ATM (90). Cover keypad (30) pushes them to "
               "online banking (150); adding SMS authentication (total 50) "
               "sends them back to the ATM with a camera (165). Strong "
               "password appears in no optimal point: that money is "
               "wasted.\n";

  std::cout << "\nKordy & Widel [5] report only the unlimited-budget "
               "values: 165 (tree) / 140 (set); the fronts above show the "
               "whole trade-off curve.\n";

  // --- optional DOT export ----------------------------------------------
  if (int i = 1; argc >= 3 && std::string(argv[i]) == "--dot-dir") {
    const std::string dir = argv[i + 1];
    std::ofstream(dir + "/money_theft.dot") << to_dot(dag);
    const auto order = bdd::VarOrder::defense_first(dag.adt());
    bdd::Manager manager(order.num_vars());
    const bdd::Ref root =
        bdd::build_structure_function(manager, dag.adt(), order);
    std::ofstream(dir + "/money_theft_robdd.dot")
        << bdd::to_dot(manager, root, dag.adt(), order);
    std::cout << "\nwrote " << dir << "/money_theft.dot and "
              << dir << "/money_theft_robdd.dot\n";
  }
  return 0;
}
