/// A miniature serving loop over the batch layer: rounds of analysis
/// "requests" (jobs with per-item options) are served against one shared
/// FrontCache, results stream to the consumer as they complete, and the
/// whole loop runs under a per-round deadline with a cancellation token
/// wired to the stream. This is the ADTool-style interactive workload:
/// the same models come back round after round with small variations, so
/// the warm rounds are served almost entirely from the cache.
///
/// The loop also layers the two caches the batch layer offers: the
/// FrontCache replays whole results for byte-identical requests, and a
/// shared NodeFrontMemo replays per-subtree fronts when a request is
/// *almost* identical. Each round nudges one leaf weight of the Fig. 4
/// model, so its FrontCache entry misses while the memo still serves
/// every untouched subtree - the counters printed per item and per round
/// show exactly which layer absorbed the work.
///
/// Usage: serving_loop [--rounds N] [--threads N] [--deadline SECONDS]

#include <iostream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/front_cache.hpp"
#include "core/node_memo.hpp"
#include "example_args.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;
using examples::flag;
using examples::flag_d;

int main(int argc, char** argv) {
  const std::size_t rounds = flag(argc, argv, "rounds", 3);
  const auto threads = static_cast<unsigned>(flag(argc, argv, "threads", 0));
  const double deadline = flag_d(argc, argv, "deadline", 5.0);

  // The "model store": the paper's example models, as a client would keep
  // them loaded between requests.
  const std::vector<AugmentedAdt> store = {
      catalog::fig3_example(),
      catalog::fig5_example(),
      catalog::money_theft_dag(),
      catalog::fig4_exponential(8),
  };
  // The Fig. 4 request mutates between rounds (a one-leaf weight nudge),
  // living in its own slot so the immutable store stays shared.
  AugmentedAdt fig4_request = store.back();

  // One request mixes per-item options: the tiny trees are double-checked
  // with the exponential oracle, the DAG gets the BDD algorithm with a
  // generous node budget, the Fig. 4 family runs the hybrid decomposition.
  std::vector<BatchJob> jobs(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) jobs[i].model = &store[i];
  jobs[0].options.algorithm = Algorithm::Naive;
  jobs[1].options.algorithm = Algorithm::Naive;
  jobs[2].options.algorithm = Algorithm::BddBu;
  jobs[2].options.bdd.node_limit = 1u << 22;
  jobs[3].options.algorithm = Algorithm::Hybrid;
  jobs[3].model = &fig4_request;

  FrontCache cache(64);  // far larger than the working set of 4 keys
  NodeFrontMemo memo;    // subtree fronts shared across rounds and items
  CancelToken cancel;

  for (std::size_t round = 1; round <= rounds; ++round) {
    if (round > 1) {
      // The interactive edit: one defense weight changes, so the Fig. 4
      // item's FrontCache key misses but all untouched subtree fronts
      // replay from the shared memo.
      Attribution tweaked = fig4_request.attribution();
      tweaked.set("d1", tweaked.get("d1") + static_cast<double>(round));
      fig4_request =
          AugmentedAdt(fig4_request.adt(), std::move(tweaked),
                       fig4_request.defender_domain(),
                       fig4_request.attacker_domain());
    }
    std::cout << "--- round " << round << " ---\n";
    BatchOptions batch;
    batch.n_threads = threads;
    batch.deadline_seconds = deadline;  // per-round budget
    batch.cancel = &cancel;
    batch.cache = &cache;
    batch.memo = &memo;
    // Streaming consumer: print every result the moment it completes
    // (completion order, not submission order), and cancel the rest of
    // the round on the first hard failure.
    batch.on_item = [&cancel](const BatchItem& item) {
      if (item.ok) {
        const Front& front = item.result.front;
        std::string text = front.to_string();
        if (front.size() > 4) {
          text = "{" + std::to_string(front.size()) + " points}";
        }
        std::string memo_note;
        if (item.memo_hits + item.memo_misses > 0) {
          memo_note = " (memo " + std::to_string(item.memo_hits) + " hit" +
                      (item.memo_hits == 1 ? "" : "s") + ", " +
                      std::to_string(item.memo_misses) + " miss" +
                      (item.memo_misses == 1 ? "" : "es") + ")";
        }
        std::cout << "  item " << item.index << (item.cached ? " [cached]" : "")
                  << " " << to_string(item.result.used) << " -> " << text
                  << memo_note << "\n";
      } else {
        std::cout << "  item " << item.index << " FAILED: " << item.error
                  << "\n";
        if (!item.skipped) cancel.cancel();
      }
    };

    const BatchReport report = analyze_batch(jobs, batch);
    const FrontCache::Stats stats = cache.stats();
    std::cout << "  round served in " << format_seconds(report.seconds)
              << " on " << report.threads_used << " thread(s): "
              << report.cache_hits << "/" << report.items.size()
              << " from cache (lifetime hit rate "
              << static_cast<int>(100 * stats.hit_rate()) << "%, "
              << stats.entries << " entries)\n";
    const NodeFrontMemo::Stats memo_stats = memo.stats();
    std::cout << "  subtree memo: " << report.memo_hits << " hits / "
              << report.memo_misses << " misses this round (lifetime hit rate "
              << static_cast<int>(100 * memo_stats.hit_rate()) << "%, "
              << memo_stats.entries << " fronts resident)\n";
    if (report.cancelled || report.deadline_expired) {
      std::cout << "  round aborted ("
                << (report.cancelled ? "cancelled" : "deadline") << ")\n";
      break;
    }
  }
  return 0;
}
