/// A miniature serving loop over the batch layer: rounds of analysis
/// "requests" (jobs with per-item options) are served against one shared
/// FrontCache, results stream to the consumer as they complete, and the
/// whole loop runs under a per-round deadline with a cancellation token
/// wired to the stream. This is the ADTool-style interactive workload:
/// the same models come back round after round with small variations, so
/// the warm rounds are served almost entirely from the cache.
///
/// Usage: serving_loop [--rounds N] [--threads N] [--deadline SECONDS]

#include <iostream>
#include <string>
#include <vector>

#include "core/batch.hpp"
#include "core/front_cache.hpp"
#include "example_args.hpp"
#include "gen/catalog.hpp"
#include "util/table.hpp"

using namespace adtp;
using examples::flag;
using examples::flag_d;

int main(int argc, char** argv) {
  const std::size_t rounds = flag(argc, argv, "rounds", 3);
  const auto threads = static_cast<unsigned>(flag(argc, argv, "threads", 0));
  const double deadline = flag_d(argc, argv, "deadline", 5.0);

  // The "model store": the paper's example models, as a client would keep
  // them loaded between requests.
  const std::vector<AugmentedAdt> store = {
      catalog::fig3_example(),
      catalog::fig5_example(),
      catalog::money_theft_dag(),
      catalog::fig4_exponential(8),
  };

  // One request mixes per-item options: the tiny trees are double-checked
  // with the exponential oracle, the DAG gets the BDD algorithm with a
  // generous node budget, the Fig. 4 family runs the hybrid decomposition.
  std::vector<BatchJob> jobs(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) jobs[i].model = &store[i];
  jobs[0].options.algorithm = Algorithm::Naive;
  jobs[1].options.algorithm = Algorithm::Naive;
  jobs[2].options.algorithm = Algorithm::BddBu;
  jobs[2].options.bdd.node_limit = 1u << 22;
  jobs[3].options.algorithm = Algorithm::Hybrid;

  FrontCache cache(64);  // far larger than the working set of 4 keys
  CancelToken cancel;

  for (std::size_t round = 1; round <= rounds; ++round) {
    std::cout << "--- round " << round << " ---\n";
    BatchOptions batch;
    batch.n_threads = threads;
    batch.deadline_seconds = deadline;  // per-round budget
    batch.cancel = &cancel;
    batch.cache = &cache;
    // Streaming consumer: print every result the moment it completes
    // (completion order, not submission order), and cancel the rest of
    // the round on the first hard failure.
    batch.on_item = [&cancel](const BatchItem& item) {
      if (item.ok) {
        const Front& front = item.result.front;
        std::string text = front.to_string();
        if (front.size() > 4) {
          text = "{" + std::to_string(front.size()) + " points}";
        }
        std::cout << "  item " << item.index << (item.cached ? " [cached]" : "")
                  << " " << to_string(item.result.used) << " -> " << text
                  << "\n";
      } else {
        std::cout << "  item " << item.index << " FAILED: " << item.error
                  << "\n";
        if (!item.skipped) cancel.cancel();
      }
    };

    const BatchReport report = analyze_batch(jobs, batch);
    const FrontCache::Stats stats = cache.stats();
    std::cout << "  round served in " << format_seconds(report.seconds)
              << " on " << report.threads_used << " thread(s): "
              << report.cache_hits << "/" << report.items.size()
              << " from cache (lifetime hit rate "
              << static_cast<int>(100 * stats.hit_rate()) << "%, "
              << stats.entries << " entries)\n";
    if (report.cancelled || report.deadline_expired) {
      std::cout << "  round aborted ("
                << (report.cancelled ? "cancelled" : "deadline") << ")\n";
      break;
    }
  }
  return 0;
}
