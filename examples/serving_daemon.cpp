/// A small analysis daemon over the persistent front store: models arrive
/// over a Unix or loopback-TCP socket in any of the repo's exchange
/// formats, results stream back as JSON lines, and every computed front is
/// persisted through the crash-safe store (src/store/) so a restarted
/// daemon serves the same fleet warm - bit-identical to the cold run, by
/// contract 5 of docs/CONTRACTS.md. Store trouble never fails a request:
/// the PersistentFrontCache retries transient errors with bounded
/// exponential backoff and degrades to memory-only on permanent ones.
///
/// Wire protocol (one request per line; responses are single JSON lines):
///
///   ANALYZE <format> <nbytes>\n<payload>   format in {text, xml, json}
///   STATS\n                                serving + cache + store metrics
///   PING\n                                 liveness probe
///
/// The text payload is src/adt/text_format.hpp's language; xml is ADTool
/// tree XML (src/adt/adtool_xml.hpp); json is an envelope
/// {"format":"text"|"xml","model":"...","algorithm":"...","deadline":S}
/// wrapping either of the other two (there is no native JSON model
/// format). An ANALYZE response:
///
///   {"ok":true,"cached":false,"algorithm":"bdd_bu","nodes":31,
///    "seconds":0.0012,"front":[[0,"inf"],[4,12.5]]}
///
/// or {"ok":false,"error":"...","retryable":true|false} - retryable marks
/// admission-control rejections (the in-flight cap) that a client should
/// retry with backoff, as the bundled client mode does.
///
/// Admission control runs against the same deadline guards the analysis
/// kernels honor: every request is analyzed under --deadline seconds (a
/// kernel-level Deadline, not a socket timeout), and at most
/// --max-inflight analyses run concurrently; excess requests are rejected
/// up front instead of queueing past their deadline.
///
/// Server:  serving_daemon --socket /tmp/adtp.sock [--store DIR]
///          serving_daemon --port 7411 [--store DIR]
///            [--deadline S] [--max-inflight N] [--threads N]
///            [--memory-capacity N]
/// Client:  serving_daemon --connect /tmp/adtp.sock --ping
///          serving_daemon --connect 127.0.0.1:7411 --stats
///          serving_daemon --connect SOCK --analyze FILE --format text
///          serving_daemon --connect SOCK --round      (built-in catalog
///            round exercising all three formats; exits nonzero on any
///            failed item - the CI smoke workload)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adt/adtool_xml.hpp"
#include "adt/text_format.hpp"
#include "core/analyzer.hpp"
#include "example_args.hpp"
#include "gen/catalog.hpp"
#include "store/persistent_cache.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace adtp;
using examples::flag;
using examples::flag_d;

namespace {

// ---- tiny socket layer -----------------------------------------------------

void write_all_fd(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw Error("socket write failed: " + std::string(std::strerror(errno)));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads one '\n'-terminated line (the terminator is consumed, not
/// returned). Empty optional on clean EOF before any byte.
std::optional<std::string> read_line_fd(int fd, std::size_t max = 4096) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t r = ::read(fd, &c, 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error("socket read failed: " + std::string(std::strerror(errno)));
    }
    if (r == 0) {
      if (line.empty()) return std::nullopt;
      return line;  // EOF mid-line: hand back what arrived
    }
    if (c == '\n') return line;
    if (line.size() >= max) throw Error("request line too long");
    line += c;
  }
}

std::string read_exact_fd(int fd, std::size_t n) {
  std::string body(n, '\0');
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, body.data() + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw Error("socket read failed: " + std::string(std::strerror(errno)));
    }
    if (r == 0) throw Error("connection closed mid-payload");
    got += static_cast<std::size_t>(r);
  }
  return body;
}

struct Endpoint {
  bool is_unix = true;
  std::string path;         ///< unix socket path
  std::string host;         ///< tcp host
  std::uint16_t port = 0;   ///< tcp port
};

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos &&
      spec.find('/') == std::string::npos) {
    ep.is_unix = false;
    ep.host = spec.substr(0, colon);
    ep.port = static_cast<std::uint16_t>(std::stoul(spec.substr(colon + 1)));
  } else {
    ep.path = spec;
  }
  return ep;
}

int listen_on(const Endpoint& ep) {
  if (ep.is_unix) {
    ::unlink(ep.path.c_str());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path)) {
      throw Error("unix socket path too long: " + ep.path);
    }
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw Error("bind(" + ep.path + ") failed: " + std::strerror(errno));
    }
    if (::listen(fd, 64) != 0) throw Error("listen() failed");
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ep.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw Error("bind(port " + std::to_string(ep.port) +
                ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) throw Error("listen() failed");
  return fd;
}

int connect_to(const Endpoint& ep) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw Error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw Error("connect(" + ep.path + ") failed: " + std::strerror(errno));
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("bad host: " + ep.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw Error("connect(" + ep.host + ":" + std::to_string(ep.port) +
                ") failed: " + std::strerror(errno));
  }
  return fd;
}

// ---- the server ------------------------------------------------------------

struct ServerConfig {
  double deadline_seconds = 10.0;
  std::size_t max_inflight = 8;
  unsigned threads = 0;  ///< intra-model threads per analysis (0 = default)
};

struct ServingMetrics {
  std::atomic<std::uint64_t> requests{0};   ///< ANALYZE requests accepted
  std::atomic<std::uint64_t> computed{0};   ///< served by running a kernel
  std::atomic<std::uint64_t> cache_hits{0}; ///< served from memory or store
  std::atomic<std::uint64_t> rejected{0};   ///< admission-control rejections
  std::atomic<std::uint64_t> failed{0};     ///< parse/model/deadline errors
};

struct ParsedRequest {
  std::optional<AugmentedAdt> aadt;  ///< engaged after a successful parse
  AnalysisOptions options;
  double deadline_override = 0;  ///< json envelope only; 0 = server default
};

Algorithm parse_algorithm(const std::string& name) {
  if (name == "auto") return Algorithm::Auto;
  if (name == "naive") return Algorithm::Naive;
  if (name == "bottom_up" || name == "bottom-up") return Algorithm::BottomUp;
  if (name == "bdd_bu" || name == "bdd-bu") return Algorithm::BddBu;
  if (name == "hybrid") return Algorithm::Hybrid;
  throw Error("unknown algorithm: " + name);
}

AugmentedAdt model_from(const std::string& format, const std::string& body) {
  if (format == "text") return parse_adt_text(body).augmented();
  if (format == "xml") {
    AdtoolImport imported = import_adtool_xml(body);
    return AugmentedAdt(std::move(imported.adt), std::move(imported.attribution),
                        Semiring::min_cost(), Semiring::min_cost());
  }
  throw Error("unknown model format: " + format);
}

ParsedRequest parse_request(const std::string& format,
                            const std::string& body) {
  ParsedRequest req;
  if (format == "json") {
    const JsonValue doc = parse_json(body);
    const std::string inner =
        doc.has("format") ? doc.at("format").as_string() : "text";
    if (inner == "json") throw Error("json envelope cannot nest json");
    req.aadt = model_from(inner, doc.at("model").as_string());
    if (doc.has("algorithm")) {
      req.options.algorithm = parse_algorithm(doc.at("algorithm").as_string());
    }
    if (doc.has("deadline")) {
      req.deadline_override = doc.at("deadline").as_number();
    }
    return req;
  }
  req.aadt = model_from(format, body);
  return req;
}

std::string error_json(const std::string& what, bool retryable) {
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(false);
  json.key("error").value(what);
  json.key("retryable").value(retryable);
  json.end_object();
  return json.str();
}

std::string result_json(const AnalysisResult& result, bool cached,
                        std::size_t nodes) {
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("cached").value(cached);
  json.key("algorithm").value(to_string(result.used));
  json.key("nodes").value(static_cast<std::uint64_t>(nodes));
  json.key("seconds").value(result.seconds);
  json.key("front").begin_array();
  for (const ValuePoint& p : result.front.points()) {
    json.begin_array();
    json.value(p.def);
    json.value(p.att);
    json.end_array();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string stats_json(const store::PersistentFrontCache& cache,
                       const ServingMetrics& metrics) {
  const FrontCache::Stats memory = cache.stats();
  const store::PersistentCacheStats persistence = cache.persistence_stats();
  JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("requests").value(metrics.requests.load());
  json.key("computed").value(metrics.computed.load());
  json.key("cache_hits").value(metrics.cache_hits.load());
  json.key("rejected").value(metrics.rejected.load());
  json.key("failed").value(metrics.failed.load());
  const std::uint64_t served =
      metrics.computed.load() + metrics.cache_hits.load();
  json.key("hit_rate")
      .value(served == 0 ? 0.0
                         : static_cast<double>(metrics.cache_hits.load()) /
                               static_cast<double>(served));
  json.key("memory").begin_object();
  json.key("hits").value(memory.hits);
  json.key("misses").value(memory.misses);
  json.key("entries").value(static_cast<std::uint64_t>(memory.entries));
  json.key("coalesced").value(memory.coalesced);
  json.end_object();
  json.key("persistent").value(cache.persistent());
  json.key("store").begin_object();
  json.key("hits").value(persistence.store_hits);
  json.key("writes").value(persistence.store_writes);
  json.key("errors").value(persistence.store_errors);
  json.key("retries").value(persistence.retries);
  json.key("decode_failures").value(persistence.decode_failures);
  json.key("degraded").value(persistence.degraded);
  json.end_object();
  if (const auto recovery = cache.recovery()) {
    json.key("recovery").begin_object();
    json.key("entries_recovered").value(recovery->entries_recovered);
    json.key("records_skipped").value(recovery->records_skipped);
    json.key("tail_bytes_truncated").value(recovery->tail_bytes_truncated);
    json.key("stale_generation").value(recovery->stale_generation);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

/// Serves one ANALYZE request body; returns the JSON response line.
/// Identical concurrent requests coalesce on the cache's single-flight
/// path, so a thundering herd computes each front exactly once.
std::string serve_analyze(store::PersistentFrontCache& cache,
                          const ServerConfig& config, ServingMetrics& metrics,
                          const std::string& format, const std::string& body,
                          std::atomic<std::size_t>& inflight) {
  ParsedRequest req;
  try {
    req = parse_request(format, body);
  } catch (const std::exception& e) {
    metrics.failed.fetch_add(1);
    return error_json(e.what(), /*retryable=*/false);
  }

  // Admission: reject past the in-flight cap instead of queueing a
  // request that would expire before a worker even picks it up.
  if (inflight.fetch_add(1) >= config.max_inflight) {
    inflight.fetch_sub(1);
    metrics.rejected.fetch_add(1);
    return error_json("over capacity (max-inflight reached)",
                      /*retryable=*/true);
  }
  struct InflightRelease {
    std::atomic<std::size_t>& n;
    ~InflightRelease() { n.fetch_sub(1); }
  } release{inflight};

  metrics.requests.fetch_add(1);
  const double budget = req.deadline_override > 0 ? req.deadline_override
                                                  : config.deadline_seconds;
  const Deadline deadline(budget);
  req.options.naive.deadline = &deadline;
  req.options.bottom_up.deadline = &deadline;
  req.options.bdd.deadline = &deadline;
  req.options.hybrid.bdd.deadline = &deadline;
  if (config.threads > 0) req.options.intra_model_threads = config.threads;

  const FrontCacheKey key = front_cache_key(*req.aadt, req.options);
  FrontCache::FlightLookup flight = cache.lookup_or_reserve(key);
  if (flight.result.has_value()) {
    metrics.cache_hits.fetch_add(1);
    return result_json(*flight.result, /*cached=*/true, req.aadt->adt().size());
  }
  AnalysisResult result;
  try {
    result = analyze(*req.aadt, req.options);
  } catch (const std::exception& e) {
    cache.abandon(key);
    metrics.failed.fetch_add(1);
    return error_json(e.what(), /*retryable=*/false);
  }
  cache.publish(key, result);
  metrics.computed.fetch_add(1);
  return result_json(result, /*cached=*/false, req.aadt->adt().size());
}

void serve_connection(int fd, store::PersistentFrontCache& cache,
                      const ServerConfig& config, ServingMetrics& metrics,
                      std::atomic<std::size_t>& inflight) {
  try {
    while (true) {
      const std::optional<std::string> line = read_line_fd(fd);
      if (!line.has_value()) break;
      std::istringstream words(*line);
      std::string verb;
      words >> verb;
      std::string response;
      if (verb == "PING") {
        response = R"({"ok":true,"pong":true})";
      } else if (verb == "STATS") {
        response = stats_json(cache, metrics);
      } else if (verb == "ANALYZE") {
        std::string format;
        std::size_t nbytes = 0;
        if (!(words >> format >> nbytes) || nbytes > (16u << 20)) {
          response = error_json("malformed ANALYZE header", false);
        } else {
          const std::string body = read_exact_fd(fd, nbytes);
          response =
              serve_analyze(cache, config, metrics, format, body, inflight);
        }
      } else {
        response = error_json("unknown verb: " + verb, false);
      }
      response += "\n";
      write_all_fd(fd, response.data(), response.size());
    }
  } catch (const std::exception& e) {
    // A broken connection only takes itself down.
    std::cerr << "[conn] " << e.what() << "\n";
  }
  ::close(fd);
}

int run_server(const Endpoint& ep, const std::string& store_dir,
               const ServerConfig& config, std::size_t memory_capacity) {
  store::PersistentCacheOptions cache_options;
  cache_options.memory_capacity = memory_capacity;
  cache_options.on_store_error = [](const std::string& what) {
    std::cerr << "[store] " << what << "\n";
  };
  store::PersistentFrontCache cache(store_dir, cache_options);
  if (cache.persistent()) {
    const auto recovery = cache.recovery();
    std::cout << "[daemon] store " << store_dir << ": recovered "
              << (recovery ? recovery->entries_recovered : 0) << " front(s)";
    if (recovery && recovery->tail_bytes_truncated > 0) {
      std::cout << ", truncated " << recovery->tail_bytes_truncated
                << " torn tail byte(s)";
    }
    std::cout << "\n";
  } else {
    std::cout << "[daemon] store unavailable; serving memory-only\n";
  }

  const int listener = listen_on(ep);
  std::cout << "[daemon] listening on "
            << (ep.is_unix ? ep.path
                           : ep.host + ":" + std::to_string(ep.port))
            << " (deadline " << config.deadline_seconds << "s, max-inflight "
            << config.max_inflight << ")\n"
            << std::flush;

  ServingMetrics metrics;
  std::atomic<std::size_t> inflight{0};
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::cerr << "[daemon] accept failed: " << std::strerror(errno) << "\n";
      break;
    }
    std::thread(serve_connection, fd, std::ref(cache), std::cref(config),
                std::ref(metrics), std::ref(inflight))
        .detach();
  }
  ::close(listener);
  return 1;
}

// ---- the client ------------------------------------------------------------

bool has_flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name) return true;
  }
  return false;
}

std::string string_flag(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == name) return argv[i + 1];
  }
  return fallback;
}

/// Connects with bounded retry (the daemon may still be booting, or a
/// previous instance may just have been killed): doubling backoff from
/// 50ms, ~6s total before giving up.
int connect_with_retry(const Endpoint& ep) {
  double backoff = 0.05;
  for (int attempt = 0;; ++attempt) {
    try {
      return connect_to(ep);
    } catch (const Error&) {
      if (attempt >= 7) throw;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2;
    }
  }
}

std::string request_line(int fd, const std::string& line) {
  write_all_fd(fd, line.data(), line.size());
  const auto response = read_line_fd(fd, 1u << 22);
  if (!response.has_value()) throw Error("daemon closed the connection");
  return *response;
}

/// Sends one ANALYZE, retrying retryable (admission) rejections with
/// doubling backoff - the client half of the daemon's backpressure.
JsonValue client_analyze(int fd, const std::string& format,
                         const std::string& body) {
  const std::string header =
      "ANALYZE " + format + " " + std::to_string(body.size()) + "\n";
  double backoff = 0.05;
  for (int attempt = 0;; ++attempt) {
    const JsonValue reply = parse_json(request_line(fd, header + body));
    if (reply.at("ok").as_bool()) return reply;
    const bool retryable =
        reply.has("retryable") && reply.at("retryable").as_bool();
    if (!retryable || attempt >= 6) return reply;
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff *= 2;
  }
}

/// The built-in catalog round: one model per wire format (and a fourth to
/// make the round a real batch). Returns nonzero on any failed item.
int client_round(int fd) {
  struct Item {
    const char* name;
    std::string format;
    std::string body;
  };
  std::vector<Item> items;
  items.push_back({"fig3 (text)", "text",
                   to_text_format(catalog::fig3_example())});
  {
    const AugmentedAdt fig5 = catalog::fig5_example();
    JsonWriter envelope;
    envelope.begin_object();
    envelope.key("format").value("text");
    envelope.key("model").value(to_text_format(fig5));
    envelope.key("algorithm").value("naive");
    envelope.end_object();
    items.push_back({"fig5 (json envelope)", "json", envelope.str()});
  }
  {
    const AugmentedAdt money = catalog::money_theft_dag();
    items.push_back({"money_theft (adtool xml)", "xml",
                     export_adtool_xml(money.adt(), money.attribution())});
  }
  items.push_back({"fig4 n=8 (text)", "text",
                   to_text_format(catalog::fig4_exponential(8))});

  int failures = 0;
  std::size_t cached = 0;
  for (const Item& item : items) {
    const JsonValue reply = client_analyze(fd, item.format, item.body);
    if (!reply.at("ok").as_bool()) {
      ++failures;
      std::cout << item.name << ": FAILED: " << reply.at("error").as_string()
                << "\n";
      continue;
    }
    if (reply.at("cached").as_bool()) ++cached;
    std::cout << item.name << ": " << reply.at("algorithm").as_string()
              << ", " << reply.at("front").size() << " point(s)"
              << (reply.at("cached").as_bool() ? " [cached]" : "") << "\n";
  }
  std::cout << "round: " << (items.size() - failures) << "/" << items.size()
            << " served, " << cached << " cached\n";
  return failures == 0 ? 0 : 1;
}

int run_client(const Endpoint& ep, int argc, char** argv) {
  const int fd = connect_with_retry(ep);
  int rc = 0;
  if (has_flag(argc, argv, "--ping")) {
    std::cout << request_line(fd, "PING\n") << "\n";
  } else if (has_flag(argc, argv, "--stats")) {
    std::cout << request_line(fd, "STATS\n") << "\n";
  } else if (has_flag(argc, argv, "--round")) {
    rc = client_round(fd);
  } else {
    const std::string path = string_flag(argc, argv, "--analyze", "");
    if (path.empty()) {
      std::cerr << "client needs one of --ping, --stats, --round, "
                   "--analyze FILE [--format text|xml|json]\n";
      ::close(fd);
      return 2;
    }
    const std::string format = string_flag(argc, argv, "--format", "text");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << path << "\n";
      ::close(fd);
      return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    // The daemon's reply is already a JSON line; print it verbatim so the
    // caller can pipe it into whatever reads JSON.
    const std::string header =
        "ANALYZE " + format + " " + std::to_string(body.str().size()) + "\n";
    const std::string reply = request_line(fd, header + body.str());
    std::cout << reply << "\n";
    rc = parse_json(reply).at("ok").as_bool() ? 0 : 1;
  }
  ::close(fd);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string connect_spec;
    std::string socket_path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--connect") connect_spec = argv[i + 1];
      if (std::string(argv[i]) == "--socket") socket_path = argv[i + 1];
    }
    if (!connect_spec.empty()) {
      return run_client(parse_endpoint(connect_spec), argc, argv);
    }

    const std::size_t port = flag(argc, argv, "port", 0);
    Endpoint ep;
    if (!socket_path.empty()) {
      ep.path = socket_path;
    } else if (port != 0) {
      ep.is_unix = false;
      ep.host = "127.0.0.1";
      ep.port = static_cast<std::uint16_t>(port);
    } else {
      std::cerr << "serving_daemon: need --socket PATH or --port N (server) "
                   "or --connect SPEC (client)\n";
      return 2;
    }

    std::string store_dir = "adtp_store";
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--store") store_dir = argv[i + 1];
    }
    ServerConfig config;
    config.deadline_seconds = flag_d(argc, argv, "deadline", 10.0);
    config.max_inflight = flag(argc, argv, "max-inflight", 8);
    config.threads = static_cast<unsigned>(flag(argc, argv, "threads", 0));
    const std::size_t memory_capacity =
        flag(argc, argv, "memory-capacity", 256);
    return run_server(ep, store_dir, config, memory_capacity);
  } catch (const std::exception& e) {
    std::cerr << "serving_daemon: " << e.what() << "\n";
    return 1;
  }
}
