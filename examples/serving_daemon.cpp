/// A small analysis daemon over the persistent front store: models arrive
/// over a Unix or loopback-TCP socket in any of the repo's exchange
/// formats, results stream back as JSON lines, and every computed front is
/// persisted through the crash-safe store (src/store/) so a restarted
/// daemon serves the same fleet warm - bit-identical to the cold run, by
/// contract 5 of docs/CONTRACTS.md. The serving core (bounded worker
/// pool, wire protocol, admission control, follower refresh) lives in
/// src/serve/daemon.hpp; this executable is the process shell plus a
/// command-line client.
///
/// Multi-process sharing: several daemons may point --store at one
/// directory. Exactly one holds the writer lease; the others attach with
/// --store-follower and trail its appends (--store-refresh S, or the
/// client's --refresh), serving the shared fronts warm. When the writer
/// dies, `--connect FOLLOWER --promote` turns a follower into the writer
/// (docs/CONTRACTS.md contract 6).
///
/// Server:  serving_daemon --socket /tmp/adtp.sock [--store DIR]
///          serving_daemon --port 7411 [--store DIR]
///            [--deadline S] [--max-inflight N] [--max-connections N]
///            [--threads N] [--memory-capacity N]
///            [--store-follower] [--store-refresh S]
/// Client:  serving_daemon --connect /tmp/adtp.sock --ping
///          serving_daemon --connect 127.0.0.1:7411 --stats
///          serving_daemon --connect SOCK --analyze FILE --format text
///          serving_daemon --connect SOCK --analyze-random SEED
///          serving_daemon --connect SOCK --refresh | --promote
///          serving_daemon --connect SOCK --round      (built-in catalog
///            round exercising all three formats; exits nonzero on any
///            failed item - the CI smoke workload)

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adt/adtool_xml.hpp"
#include "adt/text_format.hpp"
#include "example_args.hpp"
#include "gen/catalog.hpp"
#include "gen/random_adt.hpp"
#include "serve/daemon.hpp"
#include "serve/socket.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace adtp;
using examples::flag;
using examples::flag_d;
using serve::Endpoint;

namespace {

bool has_flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == name) return true;
  }
  return false;
}

std::string string_flag(int argc, char** argv, const std::string& name,
                        const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == name) return argv[i + 1];
  }
  return fallback;
}

// ---- the server ------------------------------------------------------------

int run_server(const Endpoint& ep, serve::DaemonConfig config) {
  config.log = [](const std::string& what) { std::cerr << what << "\n"; };
  serve::DaemonServer server(ep, config);

  if (server.cache().persistent()) {
    const auto recovery = server.cache().recovery();
    std::cout << "[daemon] store " << config.store_dir << ": recovered "
              << (recovery ? recovery->entries_recovered : 0) << " front(s)";
    if (recovery && recovery->tail_bytes_truncated > 0) {
      std::cout << ", truncated " << recovery->tail_bytes_truncated
                << " torn tail byte(s)";
    }
    if (server.cache().follower()) std::cout << " [follower]";
    std::cout << "\n";
  } else {
    std::cout << "[daemon] store unavailable; serving memory-only\n";
  }

  server.start();
  std::cout << "[daemon] listening on " << server.endpoint().describe()
            << " (deadline " << config.deadline_seconds << "s, max-inflight "
            << config.max_inflight << ", max-connections "
            << config.max_connections << ")\n"
            << std::flush;
  // The daemon runs until killed (the CI smoke jobs kill -9 it on
  // purpose); the serving threads do all the work.
  while (true) ::pause();
}

// ---- the client ------------------------------------------------------------

/// Sends one ANALYZE, retrying retryable (admission) rejections with
/// doubling backoff - the client half of the daemon's backpressure.
JsonValue client_analyze(int fd, const std::string& format,
                         const std::string& body) {
  const std::string header =
      "ANALYZE " + format + " " + std::to_string(body.size()) + "\n";
  double backoff = 0.05;
  for (int attempt = 0;; ++attempt) {
    const JsonValue reply =
        parse_json(serve::request_line(fd, header + body));
    if (reply.at("ok").as_bool()) return reply;
    const bool retryable =
        reply.has("retryable") && reply.at("retryable").as_bool();
    if (!retryable || attempt >= 6) return reply;
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff *= 2;
  }
}

/// The built-in catalog round: one model per wire format (and a fourth to
/// make the round a real batch). Returns nonzero on any failed item.
int client_round(int fd) {
  struct Item {
    const char* name;
    std::string format;
    std::string body;
  };
  std::vector<Item> items;
  items.push_back({"fig3 (text)", "text",
                   to_text_format(catalog::fig3_example())});
  {
    const AugmentedAdt fig5 = catalog::fig5_example();
    JsonWriter envelope;
    envelope.begin_object();
    envelope.key("format").value("text");
    envelope.key("model").value(to_text_format(fig5));
    envelope.key("algorithm").value("naive");
    envelope.end_object();
    items.push_back({"fig5 (json envelope)", "json", envelope.str()});
  }
  {
    const AugmentedAdt money = catalog::money_theft_dag();
    items.push_back({"money_theft (adtool xml)", "xml",
                     export_adtool_xml(money.adt(), money.attribution())});
  }
  items.push_back({"fig4 n=8 (text)", "text",
                   to_text_format(catalog::fig4_exponential(8))});

  int failures = 0;
  std::size_t cached = 0;
  for (const Item& item : items) {
    const JsonValue reply = client_analyze(fd, item.format, item.body);
    if (!reply.at("ok").as_bool()) {
      ++failures;
      std::cout << item.name << ": FAILED: " << reply.at("error").as_string()
                << "\n";
      continue;
    }
    if (reply.at("cached").as_bool()) ++cached;
    std::cout << item.name << ": " << reply.at("algorithm").as_string()
              << ", " << reply.at("front").size() << " point(s)"
              << (reply.at("cached").as_bool() ? " [cached]" : "") << "\n";
  }
  std::cout << "round: " << (items.size() - failures) << "/" << items.size()
            << " served, " << cached << " cached\n";
  return failures == 0 ? 0 : 1;
}

int run_client(const Endpoint& ep, int argc, char** argv) {
  const int fd = serve::connect_with_retry(ep);
  int rc = 0;
  if (has_flag(argc, argv, "--ping")) {
    std::cout << serve::request_line(fd, "PING\n") << "\n";
  } else if (has_flag(argc, argv, "--stats")) {
    std::cout << serve::request_line(fd, "STATS\n") << "\n";
  } else if (has_flag(argc, argv, "--refresh")) {
    const std::string reply = serve::request_line(fd, "REFRESH\n");
    std::cout << reply << "\n";
    rc = parse_json(reply).at("ok").as_bool() ? 0 : 1;
  } else if (has_flag(argc, argv, "--promote")) {
    const std::string reply = serve::request_line(fd, "PROMOTE\n");
    std::cout << reply << "\n";
    rc = parse_json(reply).at("ok").as_bool() ? 0 : 1;
  } else if (has_flag(argc, argv, "--round")) {
    rc = client_round(fd);
  } else if (has_flag(argc, argv, "--analyze-random")) {
    // A deterministic random model per seed: lets a smoke script prove
    // the daemon computes and persists something it has never seen.
    const std::uint64_t seed = flag(argc, argv, "analyze-random", 1);
    RandomAdtOptions options;
    options.target_nodes = 24;
    options.max_defenses = 6;
    const AugmentedAdt aadt = generate_random_aadt(
        options, seed, Semiring::min_cost(), Semiring::min_cost());
    const JsonValue reply =
        client_analyze(fd, "text", to_text_format(aadt));
    const bool ok = reply.at("ok").as_bool();
    if (ok) {
      std::cout << "random seed " << seed << ": "
                << reply.at("algorithm").as_string() << ", "
                << reply.at("front").size() << " point(s)"
                << (reply.at("cached").as_bool() ? " [cached]" : "") << "\n";
    } else {
      std::cout << "random seed " << seed
                << ": FAILED: " << reply.at("error").as_string() << "\n";
    }
    rc = ok ? 0 : 1;
  } else {
    const std::string path = string_flag(argc, argv, "--analyze", "");
    if (path.empty()) {
      std::cerr << "client needs one of --ping, --stats, --round, --refresh, "
                   "--promote, --analyze-random SEED, "
                   "--analyze FILE [--format text|xml|json]\n";
      ::close(fd);
      return 2;
    }
    const std::string format = string_flag(argc, argv, "--format", "text");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << path << "\n";
      ::close(fd);
      return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    // The daemon's reply is already a JSON line; print it verbatim so the
    // caller can pipe it into whatever reads JSON.
    const std::string header =
        "ANALYZE " + format + " " + std::to_string(body.str().size()) + "\n";
    const std::string reply = serve::request_line(fd, header + body.str());
    std::cout << reply << "\n";
    rc = parse_json(reply).at("ok").as_bool() ? 0 : 1;
  }
  ::close(fd);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // The library writes with MSG_NOSIGNAL, but ignore SIGPIPE anyway so
  // no stray pipe write can ever kill the process.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    std::string connect_spec;
    std::string socket_path;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string(argv[i]) == "--connect") connect_spec = argv[i + 1];
      if (std::string(argv[i]) == "--socket") socket_path = argv[i + 1];
    }
    if (!connect_spec.empty()) {
      return run_client(serve::parse_endpoint(connect_spec), argc, argv);
    }

    const std::size_t port = flag(argc, argv, "port", 0);
    Endpoint ep;
    if (!socket_path.empty()) {
      ep.path = socket_path;
    } else if (port != 0) {
      ep.is_unix = false;
      ep.host = "127.0.0.1";
      ep.port = static_cast<std::uint16_t>(port);
    } else {
      std::cerr << "serving_daemon: need --socket PATH or --port N (server) "
                   "or --connect SPEC (client)\n";
      return 2;
    }

    serve::DaemonConfig config;
    config.store_dir = string_flag(argc, argv, "--store", "adtp_store");
    config.deadline_seconds = flag_d(argc, argv, "deadline", 10.0);
    config.max_inflight = flag(argc, argv, "max-inflight", 8);
    config.max_connections = flag(argc, argv, "max-connections", 64);
    config.threads = static_cast<unsigned>(flag(argc, argv, "threads", 0));
    config.memory_capacity = flag(argc, argv, "memory-capacity", 256);
    config.store_follower = has_flag(argc, argv, "--store-follower");
    config.store_refresh_seconds = flag_d(argc, argv, "store-refresh", 0.0);
    return run_server(ep, config);
  } catch (const std::exception& e) {
    std::cerr << "serving_daemon: " << e.what() << "\n";
    return 1;
  }
}
