/// Random-model fleet analysis: generates a batch of random ADTs (the
/// paper's appendix generator), analyzes the whole fleet concurrently with
/// analyze_batch(), and prints a summary table - a miniature of the
/// paper's experimental pipeline, and a template for users who want to
/// stress their own models.
///
/// Usage: random_fleet [--count N] [--nodes N] [--dag P] [--seed S]
///                     [--threads N]

#include <iostream>
#include <string>

#include "core/analyzer.hpp"
#include "core/batch.hpp"
#include "example_args.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace adtp;
using examples::flag;
using examples::flag_d;

int main(int argc, char** argv) {
  const std::size_t count = flag(argc, argv, "count", 12);
  const std::size_t nodes = flag(argc, argv, "nodes", 80);
  const double dag_probability = flag_d(argc, argv, "dag", 0.2);
  const std::uint64_t seed = flag(argc, argv, "seed", 1);
  const auto threads = static_cast<unsigned>(flag(argc, argv, "threads", 0));

  std::cout << "generating " << count << " random ADTs (~" << nodes
            << " nodes, share probability " << dag_probability << ")\n\n";

  std::vector<AugmentedAdt> fleet;
  fleet.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    RandomAdtOptions options;
    options.target_nodes = nodes;
    options.share_probability = dag_probability;
    options.max_defenses = 16;
    fleet.push_back(generate_random_aadt(options, rng(), Semiring::min_cost(),
                                         Semiring::min_cost()));
  }

  AnalysisOptions analysis;
  analysis.bdd.node_limit = 8u << 20;
  analysis.bdd.max_front_points = 200000;

  // Serve the fleet through the job API: shared analysis options here,
  // but per-item options are one assignment away (see serving_loop for
  // the full treatment with deadlines, cancellation, and a FrontCache).
  BatchOptions serving;
  serving.n_threads = threads;
  std::size_t completed = 0;
  serving.on_item = [&completed, count](const BatchItem&) {
    // Streaming progress: items arrive as they finish, not when the
    // whole batch drains.
    ++completed;
    std::cerr << "\ranalyzed " << completed << "/" << count << std::flush;
  };
  const BatchReport batch = analyze_batch(fleet, analysis, serving);
  std::cerr << "\r";

  TextTable table({"#", "nodes", "|A|", "|D|", "shape", "algorithm",
                   "front size", "front head", "time"});
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const AugmentedAdt& aadt = fleet[i];
    const BatchItem& item = batch.items[i];
    if (item.ok) {
      const Front& front = item.result.front;
      std::string head = "{";
      for (std::size_t k = 0; k < std::min<std::size_t>(2, front.size());
           ++k) {
        const auto& p = front.points()[k];
        head += (k ? ", " : "") + std::string("(") + format_value(p.def) +
                ", " + format_value(p.att) + ")";
      }
      if (front.size() > 2) head += ", ...";
      head += "}";
      table.add_row({std::to_string(i), std::to_string(aadt.adt().size()),
                     std::to_string(aadt.adt().num_attacks()),
                     std::to_string(aadt.adt().num_defenses()),
                     aadt.adt().is_tree() ? "tree" : "dag",
                     to_string(item.result.used),
                     std::to_string(front.size()), head,
                     format_seconds(item.seconds)});
    } else {
      // Show the per-item error (resource caps and genuine failures alike).
      std::string why = item.error;
      if (why.size() > 40) why = why.substr(0, 37) + "...";
      table.add_row({std::to_string(i), std::to_string(aadt.adt().size()),
                     std::to_string(aadt.adt().num_attacks()),
                     std::to_string(aadt.adt().num_defenses()),
                     aadt.adt().is_tree() ? "tree" : "dag", "-", "-", why,
                     "-"});
    }
  }
  std::cout << table.to_text();
  std::cout << "\n" << batch.items.size() - batch.failures << "/"
            << batch.items.size() << " analyzed on " << batch.threads_used
            << " thread(s) in " << format_seconds(batch.seconds) << " ("
            << batch.trees_per_second() << " ok-trees/sec, "
            << batch.items_per_second() << " items/sec)\n";
  return 0;
}
