/// Random-model fleet analysis: generates a batch of random ADTs (the
/// paper's appendix generator), analyzes each with the auto-selected
/// algorithm, and prints a summary table - a miniature of the paper's
/// experimental pipeline, and a template for users who want to stress
/// their own models.
///
/// Usage: random_fleet [--count N] [--nodes N] [--dag P] [--seed S]

#include <iostream>
#include <string>

#include "core/analyzer.hpp"
#include "gen/random_adt.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace adtp;

namespace {

std::size_t flag(int argc, char** argv, const std::string& name,
                 std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) {
      return static_cast<std::size_t>(std::stoull(argv[i + 1]));
    }
  }
  return fallback;
}

double flag_d(int argc, char** argv, const std::string& name,
              double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == "--" + name) return std::stod(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t count = flag(argc, argv, "count", 12);
  const std::size_t nodes = flag(argc, argv, "nodes", 80);
  const double dag_probability = flag_d(argc, argv, "dag", 0.2);
  const std::uint64_t seed = flag(argc, argv, "seed", 1);

  std::cout << "generating " << count << " random ADTs (~" << nodes
            << " nodes, share probability " << dag_probability << ")\n\n";

  TextTable table({"#", "nodes", "|A|", "|D|", "shape", "algorithm",
                   "front size", "front head", "time"});
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    RandomAdtOptions options;
    options.target_nodes = nodes;
    options.share_probability = dag_probability;
    options.max_defenses = 16;
    const AugmentedAdt aadt = generate_random_aadt(
        options, rng(), Semiring::min_cost(), Semiring::min_cost());

    AnalysisOptions analysis;
    analysis.bdd.node_limit = 8u << 20;
    analysis.bdd.max_front_points = 200000;
    try {
      const AnalysisResult result = analyze(aadt, analysis);
      std::string head = "{";
      for (std::size_t k = 0; k < std::min<std::size_t>(2,
                                                        result.front.size());
           ++k) {
        const auto& p = result.front.points()[k];
        head += (k ? ", " : "") + std::string("(") + format_value(p.def) +
                ", " + format_value(p.att) + ")";
      }
      if (result.front.size() > 2) head += ", ...";
      head += "}";
      table.add_row({std::to_string(i), std::to_string(aadt.adt().size()),
                     std::to_string(aadt.adt().num_attacks()),
                     std::to_string(aadt.adt().num_defenses()),
                     aadt.adt().is_tree() ? "tree" : "dag",
                     to_string(result.used),
                     std::to_string(result.front.size()), head,
                     format_seconds(result.seconds)});
    } catch (const LimitError& e) {
      table.add_row({std::to_string(i), std::to_string(aadt.adt().size()),
                     std::to_string(aadt.adt().num_attacks()),
                     std::to_string(aadt.adt().num_defenses()),
                     aadt.adt().is_tree() ? "tree" : "dag", "-", "-",
                     "capped", "-"});
    }
  }
  std::cout << table.to_text();
  return 0;
}
