/// adt_cli: a small command-line front end for the library's formats.
///
/// Usage:
///   adt_cli analyze FILE [--algorithm auto|naive|bu|bdd|hybrid]
///                        [--order dfs|bfs|index|random] [--witness]
///                        [--json]
///   adt_cli cutsets FILE        # minimal attack sets (undefended)
///   adt_cli dot FILE            # Graphviz of the model, to stdout
///   adt_cli bdd-dot FILE        # Graphviz of its ROBDD, to stdout
///   adt_cli stats FILE          # node/shape statistics
///   adt_cli sample              # print a sample .adt file (Fig. 5)
///
/// FILE may be the library's text format (src/adt/text_format.hpp) or an
/// ADTool XML export (*.xml; values from its first parameter domain,
/// min-cost semantics assumed).

#include <iostream>
#include <string>

#include "adt/adtool_xml.hpp"
#include "adt/dot.hpp"
#include "adt/text_format.hpp"
#include "bdd/build.hpp"
#include "bdd/dot.hpp"
#include "core/analyzer.hpp"
#include "core/response.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace adtp;

namespace {

/// Loads either format by extension.
ParsedModel load_model(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".xml") {
    AdtoolImport import = load_adtool_file(path);
    ParsedModel model;
    model.adt = std::move(import.adt);
    model.attribution = std::move(import.attribution);
    return model;
  }
  return load_adt_file(path);
}

constexpr const char* kSample = R"(# Sample model: Fig. 5 of the paper.
# <name> = attack <cost> | defense <cost> | AND/OR [A|D] (children) |
#          INH (inhibited | trigger)
domains mincost mincost
a1 = attack 5
d1 = defense 4
i1 = INH (a1 | d1)
a2 = attack 10
d2 = defense 8
i2 = INH (a2 | d2)
top = OR A (i1, i2)
root top
)";

int usage() {
  std::cerr << "usage: adt_cli analyze FILE [--algorithm "
               "auto|naive|bu|bdd|hybrid] [--order dfs|bfs|index|random] "
               "[--witness] [--json]\n"
               "       adt_cli cutsets FILE | dot FILE | bdd-dot FILE | "
               "stats FILE | sample\n"
               "FILE: .adt text format, or an ADTool .xml export\n";
  return 2;
}

std::string option(int argc, char** argv, const std::string& name,
                   const std::string& fallback) {
  for (int i = 3; i + 1 < argc; ++i) {
    if (argv[i] == name) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& name) {
  for (int i = 3; i < argc; ++i) {
    if (argv[i] == name) return true;
  }
  return false;
}

int analyze_command(int argc, char** argv) {
  const ParsedModel model = load_model(argv[2]);
  const AugmentedAdt aadt = model.augmented();

  AnalysisOptions options;
  const std::string algorithm = option(argc, argv, "--algorithm", "auto");
  if (algorithm == "auto") {
    options.algorithm = Algorithm::Auto;
  } else if (algorithm == "naive") {
    options.algorithm = Algorithm::Naive;
  } else if (algorithm == "bu") {
    options.algorithm = Algorithm::BottomUp;
  } else if (algorithm == "bdd") {
    options.algorithm = Algorithm::BddBu;
  } else if (algorithm == "hybrid") {
    options.algorithm = Algorithm::Hybrid;
  } else {
    return usage();
  }
  const std::string order = option(argc, argv, "--order", "dfs");
  if (order == "dfs") {
    options.bdd.order_heuristic = bdd::OrderHeuristic::Dfs;
  } else if (order == "bfs") {
    options.bdd.order_heuristic = bdd::OrderHeuristic::Bfs;
  } else if (order == "index") {
    options.bdd.order_heuristic = bdd::OrderHeuristic::Index;
  } else if (order == "random") {
    options.bdd.order_heuristic = bdd::OrderHeuristic::Random;
  } else {
    return usage();
  }

  const AnalysisResult result = analyze(aadt, options);

  if (has_flag(argc, argv, "--json")) {
    JsonWriter json;
    json.begin_object();
    json.key("file").value(std::string(argv[2]));
    json.key("nodes").value(aadt.adt().size());
    json.key("attacks").value(aadt.adt().num_attacks());
    json.key("defenses").value(aadt.adt().num_defenses());
    json.key("shape").value(aadt.adt().is_tree() ? "tree" : "dag");
    json.key("defender_domain").value(aadt.defender_domain().name());
    json.key("attacker_domain").value(aadt.attacker_domain().name());
    json.key("algorithm").value(std::string(to_string(result.used)));
    json.key("seconds").value(result.seconds);
    json.key("front").begin_array();
    for (const auto& p : result.front.points()) {
      json.begin_array().value(p.def).value(p.att).end_array();
    }
    json.end_array();
    json.end_object();
    std::cout << json.str() << "\n";
    return 0;
  }

  std::cout << "domains: defender = " << aadt.defender_domain().name()
            << ", attacker = " << aadt.attacker_domain().name() << "\n";
  std::cout << "algorithm: " << to_string(result.used) << " ("
            << format_seconds(result.seconds) << ")\n";
  std::cout << "pareto front: " << result.front.to_string() << "\n";

  if (has_flag(argc, argv, "--witness")) {
    const WitnessFront witnesses =
        aadt.adt().is_tree() && result.used == Algorithm::BottomUp
            ? bottom_up_front_witness(aadt)
            : bdd_bu_front_witness(aadt, options.bdd);
    std::cout << "strategies:\n";
    const Adt& adt = aadt.adt();
    for (const auto& p : witnesses.points()) {
      std::cout << "  (" << format_value(p.def) << ", "
                << format_value(p.att) << "): defenses {";
      bool first = true;
      for (std::size_t i : p.defense.set_bits()) {
        std::cout << (first ? "" : ", ") << adt.name(adt.defense_steps()[i]);
        first = false;
      }
      if (aadt.attacker_domain().equivalent(p.att,
                                            aadt.attacker_domain().zero())) {
        std::cout << "}, no successful attack exists\n";
        continue;
      }
      std::cout << "}, attack {";
      first = true;
      for (std::size_t i : p.attack.set_bits()) {
        std::cout << (first ? "" : ", ") << adt.name(adt.attack_steps()[i]);
        first = false;
      }
      std::cout << "}\n";
    }
  }
  return 0;
}

int cutsets_command(const char* path) {
  const AugmentedAdt aadt = load_model(path).augmented();
  const Adt& adt = aadt.adt();
  const auto sets =
      Responder(aadt).minimal_attacks(BitVec(adt.num_defenses()));
  std::cout << sets.size()
            << " minimal attack set(s) with no defenses deployed:\n";
  for (const BitVec& s : sets) {
    std::cout << "  value " << format_value(aadt.attack_vector_value(s))
              << ": {";
    bool first = true;
    for (std::size_t i : s.set_bits()) {
      std::cout << (first ? "" : ", ") << adt.name(adt.attack_steps()[i]);
      first = false;
    }
    std::cout << "}\n";
  }
  return 0;
}

int stats_command(const char* path) {
  const ParsedModel model = load_model(path);
  const AdtStats stats = model.adt.stats();
  TextTable table({"metric", "value"});
  table.add_row({"nodes", std::to_string(stats.nodes)});
  table.add_row({"basic attack steps", std::to_string(stats.attack_steps)});
  table.add_row({"basic defense steps",
                 std::to_string(stats.defense_steps)});
  table.add_row({"AND gates", std::to_string(stats.and_gates)});
  table.add_row({"OR gates", std::to_string(stats.or_gates)});
  table.add_row({"INH gates", std::to_string(stats.inh_gates)});
  table.add_row({"shared nodes", std::to_string(stats.shared_nodes)});
  table.add_row({"shape", stats.tree_shaped ? "tree" : "dag"});
  std::cout << table.to_text();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "sample") {
    std::cout << kSample;
    return 0;
  }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "analyze") return analyze_command(argc, argv);
    if (command == "stats") return stats_command(argv[2]);
    if (command == "cutsets") return cutsets_command(argv[2]);
    if (command == "dot") {
      std::cout << to_dot(load_model(argv[2]).augmented());
      return 0;
    }
    if (command == "bdd-dot") {
      const AugmentedAdt aadt = load_model(argv[2]).augmented();
      const auto order = bdd::VarOrder::defense_first(aadt.adt());
      bdd::Manager manager(order.num_vars());
      const bdd::Ref root =
          bdd::build_structure_function(manager, aadt.adt(), order);
      std::cout << bdd::to_dot(manager, root, aadt.adt(), order);
      return 0;
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
